//! Adversary strategies: who acts next, and how far movers get.

use fatrobots_geometry::Point;
use fatrobots_model::{Phase, RobotId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A read-only snapshot of the system handed to the adversary before every
/// step. The adversary is omniscient: it sees phases, positions and even the
/// movers' target points.
#[derive(Debug, Clone, Copy)]
pub struct SystemSnapshot<'a> {
    /// Phase of each robot.
    pub phases: &'a [Phase],
    /// Current center of each robot.
    pub centers: &'a [Point],
    /// Target point of each robot currently in its Move phase.
    pub targets: &'a [Option<Point>],
    /// The liveness distance δ in force (the adversary knows it; the robots
    /// do not).
    pub delta: f64,
}

impl SystemSnapshot<'_> {
    /// Number of robots.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// `true` when the system holds no robots.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Indices of robots that have not terminated.
    pub fn active(&self) -> Vec<usize> {
        self.active_iter().collect()
    }

    /// Iterator form of [`Self::active`]: the non-terminated robot indices
    /// in ascending order, without allocating. The adversaries run once per
    /// event, so their robot picks must not put a `Vec` on the per-event
    /// path.
    pub fn active_iter(&self) -> impl Iterator<Item = usize> + Clone + '_ {
        (0..self.len()).filter(|&i| self.phases[i] != Phase::Terminate)
    }

    /// Number of robots that have not terminated.
    pub fn active_count(&self) -> usize {
        self.active_iter().count()
    }

    /// The `k`-th (0-based) non-terminated robot index, if any — the
    /// allocation-free equivalent of `active()[k]`.
    pub fn nth_active(&self, k: usize) -> Option<usize> {
        self.active_iter().nth(k)
    }

    /// Remaining distance to the target for a robot in its Move phase.
    pub fn remaining(&self, i: usize) -> f64 {
        match self.targets[i] {
            Some(t) => self.centers[i].distance(t),
            None => 0.0,
        }
    }
}

/// How far the scheduled robot may travel if it is currently moving. Ignored
/// for robots in any other phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MotionControl {
    /// Let the robot reach its target (unless it hits another robot first).
    Full,
    /// Let the robot advance by the given distance (the engine clamps it to
    /// `[min(δ, remaining), remaining]` per the liveness conditions) and then
    /// stop it.
    Distance(f64),
    /// Let the robot advance exactly the liveness minimum and then stop it —
    /// the most obstructive schedule the adversary may impose.
    StopAfterDelta,
}

/// One adversary decision: which robot acts, and its motion allowance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Directive {
    /// The robot that takes the next step.
    pub robot: RobotId,
    /// Motion allowance if that robot is in its Move phase.
    pub motion: MotionControl,
}

/// An adversary strategy.
///
/// Implementations must satisfy liveness condition 1: as long as some robot
/// has not terminated, [`Adversary::next`] keeps scheduling every active
/// robot infinitely often. All strategies below do so by construction
/// (round-robin or uniform random over the active robots).
pub trait Adversary {
    /// Choose the next step, or `None` when every robot has terminated.
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive>;

    /// A short human-readable name (used in experiment reports).
    fn name(&self) -> &'static str;
}

/// The friendliest schedule: robots take steps in round-robin order and every
/// move runs to completion. Close to a fully synchronous execution.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates the round-robin adversary.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Adversary for RoundRobin {
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive> {
        let count = system.active_count();
        if count == 0 {
            return None;
        }
        let pick = system.nth_active(self.cursor % count)?;
        self.cursor = self.cursor.wrapping_add(1);
        Some(Directive {
            robot: RobotId(pick),
            motion: MotionControl::Full,
        })
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// A seeded random asynchronous schedule: a uniformly random active robot
/// acts next; movers advance by a uniformly random fraction of their
/// remaining distance (possibly stopping short).
#[derive(Debug, Clone)]
pub struct RandomAsync {
    rng: StdRng,
}

impl RandomAsync {
    /// Creates the adversary with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomAsync {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for RandomAsync {
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive> {
        let count = system.active_count();
        if count == 0 {
            return None;
        }
        let pick = system.nth_active(self.rng.gen_range(0..count))?;
        let motion = if self.rng.gen_bool(0.5) {
            MotionControl::Full
        } else {
            let remaining = system.remaining(pick).max(system.delta);
            MotionControl::Distance(self.rng.gen_range(0.0..=remaining))
        };
        Some(Directive {
            robot: RobotId(pick),
            motion,
        })
    }

    fn name(&self) -> &'static str {
        "random-async"
    }
}

/// The maximally obstructive mover schedule: robots act round-robin but every
/// move is stopped after the liveness minimum δ, producing the longest
/// possible executions the liveness conditions allow.
#[derive(Debug, Clone, Default)]
pub struct StopHappy {
    cursor: usize,
}

impl StopHappy {
    /// Creates the stop-happy adversary.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Adversary for StopHappy {
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive> {
        let count = system.active_count();
        if count == 0 {
            return None;
        }
        let pick = system.nth_active(self.cursor % count)?;
        self.cursor = self.cursor.wrapping_add(1);
        Some(Directive {
            robot: RobotId(pick),
            motion: MotionControl::StopAfterDelta,
        })
    }

    fn name(&self) -> &'static str {
        "stop-happy"
    }
}

/// The schedule behind the paper's *type-1/type-2 bad configurations*: one
/// designated victim robot is always dragged out at δ-speed while every other
/// robot runs at full speed, so the victim keeps acting on stale views long
/// after the rest of the system has moved on.
#[derive(Debug, Clone)]
pub struct SlowRobot {
    victim: usize,
    cursor: usize,
}

impl SlowRobot {
    /// Creates the adversary with the given victim robot index.
    pub fn new(victim: usize) -> Self {
        SlowRobot { victim, cursor: 0 }
    }
}

impl Adversary for SlowRobot {
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive> {
        let count = system.active_count();
        if count == 0 {
            return None;
        }
        let pick = system.nth_active(self.cursor % count)?;
        self.cursor = self.cursor.wrapping_add(1);
        let motion = if pick == self.victim {
            MotionControl::StopAfterDelta
        } else {
            MotionControl::Full
        };
        Some(Directive {
            robot: RobotId(pick),
            motion,
        })
    }

    fn name(&self) -> &'static str {
        "slow-robot"
    }
}

/// A schedule that tries to make moving robots meet: whenever at least two
/// robots are in their Move phase, it schedules the pair whose current
/// positions are closest (full speed, so they run into each other if their
/// trajectories intersect); otherwise it behaves like round-robin.
#[derive(Debug, Clone, Default)]
pub struct CollisionSeeker {
    cursor: usize,
}

impl CollisionSeeker {
    /// Creates the collision-seeking adversary.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Adversary for CollisionSeeker {
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive> {
        let count = system.active_count();
        if count == 0 {
            return None;
        }
        let movers = || {
            system
                .active_iter()
                .filter(|&i| system.phases[i] == Phase::Move)
        };
        if movers().count() >= 2 {
            // Schedule the mover closest to another mover.
            let first = movers().next().expect("at least two movers");
            let mut best = (first, f64::INFINITY);
            for i in movers() {
                for j in movers() {
                    if i != j {
                        let d = system.centers[i].distance(system.centers[j]);
                        if d < best.1 {
                            best = (i, d);
                        }
                    }
                }
            }
            return Some(Directive {
                robot: RobotId(best.0),
                motion: MotionControl::Full,
            });
        }
        let pick = system.nth_active(self.cursor % count)?;
        self.cursor = self.cursor.wrapping_add(1);
        Some(Directive {
            robot: RobotId(pick),
            motion: MotionControl::Full,
        })
    }

    fn name(&self) -> &'static str {
        "collision-seeker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot<'a>(
        phases: &'a [Phase],
        centers: &'a [Point],
        targets: &'a [Option<Point>],
    ) -> SystemSnapshot<'a> {
        SystemSnapshot {
            phases,
            centers,
            targets,
            delta: 0.01,
        }
    }

    fn three_waiting() -> (Vec<Phase>, Vec<Point>, Vec<Option<Point>>) {
        (
            vec![Phase::Wait; 3],
            vec![
                Point::new(0.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(10.0, 0.0),
            ],
            vec![None; 3],
        )
    }

    #[test]
    fn round_robin_cycles_over_active_robots() {
        let (phases, centers, targets) = three_waiting();
        let snap = snapshot(&phases, &centers, &targets);
        let mut adv = RoundRobin::new();
        let picks: Vec<usize> = (0..6).map(|_| adv.next(&snap).unwrap().robot.0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn terminated_robots_are_never_scheduled() {
        let (mut phases, centers, targets) = three_waiting();
        phases[1] = Phase::Terminate;
        let snap = snapshot(&phases, &centers, &targets);
        let mut adv = RoundRobin::new();
        for _ in 0..10 {
            assert_ne!(adv.next(&snap).unwrap().robot.0, 1);
        }
    }

    #[test]
    fn all_terminated_yields_none() {
        let phases = vec![Phase::Terminate; 2];
        let centers = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        let targets = vec![None, None];
        let snap = snapshot(&phases, &centers, &targets);
        assert!(RoundRobin::new().next(&snap).is_none());
        assert!(RandomAsync::new(7).next(&snap).is_none());
        assert!(StopHappy::new().next(&snap).is_none());
        assert!(SlowRobot::new(0).next(&snap).is_none());
        assert!(CollisionSeeker::new().next(&snap).is_none());
    }

    #[test]
    fn random_async_is_deterministic_per_seed_and_fair() {
        let (phases, centers, targets) = three_waiting();
        let snap = snapshot(&phases, &centers, &targets);
        let picks = |seed: u64| -> Vec<usize> {
            let mut adv = RandomAsync::new(seed);
            (0..50).map(|_| adv.next(&snap).unwrap().robot.0).collect()
        };
        assert_eq!(picks(42), picks(42));
        let p = picks(42);
        for i in 0..3 {
            assert!(p.contains(&i), "robot {i} must be scheduled eventually");
        }
    }

    #[test]
    fn stop_happy_always_limits_motion() {
        let (phases, centers, targets) = three_waiting();
        let snap = snapshot(&phases, &centers, &targets);
        let mut adv = StopHappy::new();
        for _ in 0..5 {
            assert_eq!(
                adv.next(&snap).unwrap().motion,
                MotionControl::StopAfterDelta
            );
        }
    }

    #[test]
    fn slow_robot_only_slows_the_victim() {
        let (phases, centers, targets) = three_waiting();
        let snap = snapshot(&phases, &centers, &targets);
        let mut adv = SlowRobot::new(2);
        for _ in 0..9 {
            let d = adv.next(&snap).unwrap();
            if d.robot.0 == 2 {
                assert_eq!(d.motion, MotionControl::StopAfterDelta);
            } else {
                assert_eq!(d.motion, MotionControl::Full);
            }
        }
    }

    #[test]
    fn collision_seeker_prefers_the_closest_pair_of_movers() {
        let phases = vec![Phase::Move, Phase::Move, Phase::Move, Phase::Wait];
        let centers = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(100.0, 0.0),
        ];
        let targets = vec![
            Some(Point::new(1.0, 0.0)),
            Some(Point::new(2.0, 0.0)),
            Some(Point::new(40.0, 0.0)),
            None,
        ];
        let snap = snapshot(&phases, &centers, &targets);
        let pick = CollisionSeeker::new().next(&snap).unwrap().robot.0;
        assert!(
            pick == 0 || pick == 1,
            "one of the closest movers is chosen"
        );
    }

    #[test]
    fn snapshot_helpers() {
        let phases = vec![Phase::Move, Phase::Terminate];
        let centers = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        let targets = vec![Some(Point::new(3.0, 4.0)), None];
        let snap = snapshot(&phases, &centers, &targets);
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
        assert_eq!(snap.active(), vec![0]);
        assert!((snap.remaining(0) - 5.0).abs() < 1e-12);
        assert_eq!(snap.remaining(1), 0.0);
    }
}
