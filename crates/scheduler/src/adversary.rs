//! Adversary strategies: who acts next, and how far movers get.

use fatrobots_geometry::Point;
use fatrobots_model::{Phase, RobotId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A read-only snapshot of the system handed to the adversary before every
/// step. The adversary is omniscient: it sees phases, positions and even the
/// movers' target points.
#[derive(Debug, Clone, Copy)]
pub struct SystemSnapshot<'a> {
    /// Phase of each robot.
    pub phases: &'a [Phase],
    /// Current center of each robot.
    pub centers: &'a [Point],
    /// Target point of each robot currently in its Move phase.
    pub targets: &'a [Option<Point>],
    /// The liveness distance δ in force (the adversary knows it; the robots
    /// do not).
    pub delta: f64,
}

impl SystemSnapshot<'_> {
    /// Number of robots.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// `true` when the system holds no robots.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Indices of robots that have not terminated.
    pub fn active(&self) -> Vec<usize> {
        self.active_iter().collect()
    }

    /// Iterator form of [`Self::active`]: the non-terminated robot indices
    /// in ascending order, without allocating. The adversaries run once per
    /// event, so their robot picks must not put a `Vec` on the per-event
    /// path.
    pub fn active_iter(&self) -> impl Iterator<Item = usize> + Clone + '_ {
        (0..self.len()).filter(|&i| self.phases[i] != Phase::Terminate)
    }

    /// Number of robots that have not terminated.
    pub fn active_count(&self) -> usize {
        self.active_iter().count()
    }

    /// The `k`-th (0-based) non-terminated robot index, if any — the
    /// allocation-free equivalent of `active()[k]`.
    pub fn nth_active(&self, k: usize) -> Option<usize> {
        self.active_iter().nth(k)
    }

    /// Remaining distance to the target for a robot in its Move phase.
    pub fn remaining(&self, i: usize) -> f64 {
        match self.targets[i] {
            Some(t) => self.centers[i].distance(t),
            None => 0.0,
        }
    }
}

/// How far the scheduled robot may travel if it is currently moving. Ignored
/// for robots in any other phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MotionControl {
    /// Let the robot reach its target (unless it hits another robot first).
    Full,
    /// Let the robot advance by the given distance (the engine clamps it to
    /// `[min(δ, remaining), remaining]` per the liveness conditions) and then
    /// stop it.
    Distance(f64),
    /// Let the robot advance exactly the liveness minimum and then stop it —
    /// the most obstructive schedule the adversary may impose.
    StopAfterDelta,
}

/// One adversary decision: which robot acts, and its motion allowance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Directive {
    /// The robot that takes the next step.
    pub robot: RobotId,
    /// Motion allowance if that robot is in its Move phase.
    pub motion: MotionControl,
}

/// Counters reported by the fault-injection adversaries, for telemetry.
/// All zero for the fault-free schedules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Robots permanently crashed by a fired crash-stop fault.
    pub crashed_robots: u64,
    /// Scheduling decisions taken while at least one sleep victim was
    /// starved (denied activation inside its sleep window).
    pub starved_directives: u64,
    /// Directives truncated to the liveness minimum δ by a slow coalition.
    pub truncated_directives: u64,
}

/// An adversary strategy.
///
/// Implementations must satisfy liveness condition 1: as long as some robot
/// has not terminated, [`Adversary::next`] keeps scheduling every active
/// robot infinitely often. The fault-free strategies below do so by
/// construction (round-robin or uniform random over the active robots); the
/// fault injectors deliberately violate it for their victims — [`CrashStop`]
/// permanently, which it must report through
/// [`Adversary::permanently_stopped`] so the engine can settle the run on
/// the survivors instead of waiting forever.
pub trait Adversary {
    /// Choose the next step, or `None` when every robot has terminated.
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive>;

    /// A short human-readable name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// `true` when robot `robot` has permanently stopped activating under
    /// this adversary (a crash-stop fault has fired for it). The engine
    /// excludes such robots from termination detection and restricts the
    /// gathering criterion to the live robots. Fault-free adversaries never
    /// stop a robot permanently.
    fn permanently_stopped(&self, _robot: usize) -> bool {
        false
    }

    /// The fault counters accumulated so far (all zero for fault-free
    /// adversaries).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

/// Picks `k` distinct victim indices out of `n` robots, seed-deterministic.
/// Requires `k <= n` (callers clamp).
fn pick_victims(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    let mut victims: Vec<usize> = Vec::with_capacity(k);
    while victims.len() < k {
        let v = rng.gen_range(0..n);
        if !victims.contains(&v) {
            victims.push(v);
        }
    }
    victims.sort_unstable();
    victims
}

/// The friendliest schedule: robots take steps in round-robin order and every
/// move runs to completion. Close to a fully synchronous execution.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates the round-robin adversary.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Adversary for RoundRobin {
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive> {
        let count = system.active_count();
        if count == 0 {
            return None;
        }
        let pick = system.nth_active(self.cursor % count)?;
        self.cursor = self.cursor.wrapping_add(1);
        Some(Directive {
            robot: RobotId(pick),
            motion: MotionControl::Full,
        })
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// A seeded random asynchronous schedule: a uniformly random active robot
/// acts next; movers advance by a uniformly random fraction of their
/// remaining distance (possibly stopping short).
#[derive(Debug, Clone)]
pub struct RandomAsync {
    rng: StdRng,
}

impl RandomAsync {
    /// Creates the adversary with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomAsync {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for RandomAsync {
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive> {
        let count = system.active_count();
        if count == 0 {
            return None;
        }
        let pick = system.nth_active(self.rng.gen_range(0..count))?;
        let motion = if self.rng.gen_bool(0.5) {
            MotionControl::Full
        } else {
            let remaining = system.remaining(pick).max(system.delta);
            MotionControl::Distance(self.rng.gen_range(0.0..=remaining))
        };
        Some(Directive {
            robot: RobotId(pick),
            motion,
        })
    }

    fn name(&self) -> &'static str {
        "random-async"
    }
}

/// The maximally obstructive mover schedule: robots act round-robin but every
/// move is stopped after the liveness minimum δ, producing the longest
/// possible executions the liveness conditions allow.
#[derive(Debug, Clone, Default)]
pub struct StopHappy {
    cursor: usize,
}

impl StopHappy {
    /// Creates the stop-happy adversary.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Adversary for StopHappy {
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive> {
        let count = system.active_count();
        if count == 0 {
            return None;
        }
        let pick = system.nth_active(self.cursor % count)?;
        self.cursor = self.cursor.wrapping_add(1);
        Some(Directive {
            robot: RobotId(pick),
            motion: MotionControl::StopAfterDelta,
        })
    }

    fn name(&self) -> &'static str {
        "stop-happy"
    }
}

/// The schedule behind the paper's *type-1/type-2 bad configurations*: one
/// designated victim robot is always dragged out at δ-speed while every other
/// robot runs at full speed, so the victim keeps acting on stale views long
/// after the rest of the system has moved on.
#[derive(Debug, Clone)]
pub struct SlowRobot {
    victim: Option<usize>,
    cursor: usize,
}

impl SlowRobot {
    /// Creates the adversary with the given victim robot index.
    pub fn new(victim: usize) -> Self {
        SlowRobot {
            victim: Some(victim),
            cursor: 0,
        }
    }

    /// Seed-derived victim for a system of `n` robots. A 1-robot system has
    /// no "rest of the system" for the victim to fall behind, so the
    /// schedule degenerates gracefully to plain full-speed round-robin (no
    /// victim at all) instead of pointlessly dragging the only robot at δ.
    pub fn for_system(seed: u64, n: usize) -> Self {
        SlowRobot {
            victim: (n > 1).then(|| (seed % n as u64) as usize),
            cursor: 0,
        }
    }
}

impl Adversary for SlowRobot {
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive> {
        let count = system.active_count();
        if count == 0 {
            return None;
        }
        let pick = system.nth_active(self.cursor % count)?;
        self.cursor = self.cursor.wrapping_add(1);
        let motion = if Some(pick) == self.victim {
            MotionControl::StopAfterDelta
        } else {
            MotionControl::Full
        };
        Some(Directive {
            robot: RobotId(pick),
            motion,
        })
    }

    fn name(&self) -> &'static str {
        "slow-robot"
    }
}

/// The crash-stop fault the paper's liveness condition 1 excludes: `k`
/// seed-chosen victims permanently stop activating once a seed-derived
/// number of scheduling decisions has passed. Before the fault fires the
/// schedule is plain full-speed round-robin over all active robots;
/// afterwards the victims are never scheduled again, and
/// [`Adversary::permanently_stopped`] reports them dead so the engine can
/// settle the run on the survivors (live-robot gathering) instead of
/// spinning on a Terminate that will never come.
///
/// `k` is clamped to `n - 1`: at least one robot always survives, and a
/// 1-robot system suffers no fault at all.
#[derive(Debug, Clone)]
pub struct CrashStop {
    victims: Vec<usize>,
    fault_at: u64,
    /// `next` calls taken so far (the fault clock).
    clock: u64,
    /// `true` once a `next` call has actually observed the fault.
    fired: bool,
    cursor: usize,
}

impl CrashStop {
    /// Creates the adversary for a system of `n` robots, crashing `k`
    /// seed-chosen victims after a seed-derived warm-up.
    pub fn new(seed: u64, n: usize, k: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A5_85F0_9B1C_37AD);
        let k = k.min(n.saturating_sub(1));
        let victims = if k == 0 {
            Vec::new()
        } else {
            pick_victims(&mut rng, n, k)
        };
        CrashStop {
            victims,
            fault_at: rng.gen_range(24u64..=96),
            clock: 0,
            fired: false,
            cursor: 0,
        }
    }
}

impl Adversary for CrashStop {
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive> {
        if !self.victims.is_empty() && self.clock >= self.fault_at {
            self.fired = true;
        }
        self.clock += 1;
        let dead = |i: &usize| self.fired && self.victims.binary_search(i).is_ok();
        let count = system.active_iter().filter(|i| !dead(i)).count();
        if count == 0 {
            // Every survivor has terminated (or every robot crashed): the
            // run is as finished as it will ever be.
            return None;
        }
        let pick = system
            .active_iter()
            .filter(|i| !dead(i))
            .nth(self.cursor % count)?;
        self.cursor = self.cursor.wrapping_add(1);
        Some(Directive {
            robot: RobotId(pick),
            motion: MotionControl::Full,
        })
    }

    fn name(&self) -> &'static str {
        "crash-stop"
    }

    fn permanently_stopped(&self, robot: usize) -> bool {
        self.fired && self.victims.binary_search(&robot).is_ok()
    }

    fn fault_stats(&self) -> FaultStats {
        FaultStats {
            crashed_robots: if self.fired {
                self.victims.len() as u64
            } else {
                0
            },
            ..FaultStats::default()
        }
    }
}

/// The starvation fault: `k` seed-chosen victims are denied activation for
/// a long seeded window of scheduling decisions, then resume — an extreme
/// (but finite) violation of activation fairness. Outside the window the
/// schedule is plain full-speed round-robin. If every awake robot
/// terminates while the victims sleep, the victims are woken early, so
/// liveness condition 1 still holds over the whole (finite) schedule and
/// runs stay finite.
///
/// `k` is clamped to `n - 1` so someone is always awake inside the window.
#[derive(Debug, Clone)]
pub struct PersistentSleep {
    victims: Vec<usize>,
    sleep_from: u64,
    sleep_until: u64,
    clock: u64,
    cursor: usize,
    starved: u64,
}

impl PersistentSleep {
    /// Creates the adversary for a system of `n` robots, starving `k`
    /// seed-chosen victims over a seed-derived window.
    pub fn new(seed: u64, n: usize, k: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51EE_7B0A_2D4C_9E11);
        let k = k.min(n.saturating_sub(1));
        let victims = if k == 0 {
            Vec::new()
        } else {
            pick_victims(&mut rng, n, k)
        };
        let sleep_from = rng.gen_range(16u64..=64);
        let duration = rng.gen_range(1_500u64..=4_000);
        PersistentSleep {
            victims,
            sleep_from,
            sleep_until: sleep_from + duration,
            clock: 0,
            cursor: 0,
            starved: 0,
        }
    }
}

impl Adversary for PersistentSleep {
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive> {
        let now = self.clock;
        self.clock += 1;
        let in_window =
            !self.victims.is_empty() && now >= self.sleep_from && now < self.sleep_until;
        if in_window {
            let awake = |i: &usize| self.victims.binary_search(i).is_err();
            let count = system.active_iter().filter(|i| awake(i)).count();
            if count > 0 {
                let pick = system
                    .active_iter()
                    .filter(|i| awake(i))
                    .nth(self.cursor % count)?;
                self.cursor = self.cursor.wrapping_add(1);
                self.starved += 1;
                return Some(Directive {
                    robot: RobotId(pick),
                    motion: MotionControl::Full,
                });
            }
            // Every awake robot has terminated: end the window now so the
            // sleeping victims are scheduled again and the run stays
            // finite.
            self.sleep_until = now;
        }
        let count = system.active_count();
        if count == 0 {
            return None;
        }
        let pick = system.nth_active(self.cursor % count)?;
        self.cursor = self.cursor.wrapping_add(1);
        Some(Directive {
            robot: RobotId(pick),
            motion: MotionControl::Full,
        })
    }

    fn name(&self) -> &'static str {
        "persistent-sleep"
    }

    fn fault_stats(&self) -> FaultStats {
        FaultStats {
            starved_directives: self.starved,
            ..FaultStats::default()
        }
    }
}

/// The coalition slowdown fault: a `k`-robot seed-chosen coalition is
/// *always* truncated to the liveness minimum δ while everyone else runs at
/// full speed — [`SlowRobot`] generalised from one victim to a coalition.
/// Legal under both liveness conditions (every robot keeps activating and
/// every move covers δ), so the paper's guarantee nominally still applies;
/// the fuzzer hunts the configurations where it practically does not.
///
/// `k` is clamped to `n`.
#[derive(Debug, Clone)]
pub struct SlowCoalition {
    victims: Vec<usize>,
    cursor: usize,
    truncated: u64,
}

impl SlowCoalition {
    /// Creates the adversary for a system of `n` robots with a `k`-robot
    /// seed-chosen coalition.
    pub fn new(seed: u64, n: usize, k: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5C0A_11A7_66B2_D3F5);
        let k = k.min(n);
        let victims = if k == 0 {
            Vec::new()
        } else {
            pick_victims(&mut rng, n, k)
        };
        SlowCoalition {
            victims,
            cursor: 0,
            truncated: 0,
        }
    }
}

impl Adversary for SlowCoalition {
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive> {
        let count = system.active_count();
        if count == 0 {
            return None;
        }
        let pick = system.nth_active(self.cursor % count)?;
        self.cursor = self.cursor.wrapping_add(1);
        let motion = if self.victims.binary_search(&pick).is_ok() {
            self.truncated += 1;
            MotionControl::StopAfterDelta
        } else {
            MotionControl::Full
        };
        Some(Directive {
            robot: RobotId(pick),
            motion,
        })
    }

    fn name(&self) -> &'static str {
        "slow-coalition"
    }

    fn fault_stats(&self) -> FaultStats {
        FaultStats {
            truncated_directives: self.truncated,
            ..FaultStats::default()
        }
    }
}

/// A schedule that tries to make moving robots meet: whenever at least two
/// robots are in their Move phase, it schedules the pair whose current
/// positions are closest (full speed, so they run into each other if their
/// trajectories intersect); otherwise it behaves like round-robin.
#[derive(Debug, Clone, Default)]
pub struct CollisionSeeker {
    cursor: usize,
}

impl CollisionSeeker {
    /// Creates the collision-seeking adversary.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Adversary for CollisionSeeker {
    fn next(&mut self, system: &SystemSnapshot<'_>) -> Option<Directive> {
        let count = system.active_count();
        if count == 0 {
            return None;
        }
        let movers = || {
            system
                .active_iter()
                .filter(|&i| system.phases[i] == Phase::Move)
        };
        if movers().count() >= 2 {
            // Schedule the mover closest to another mover.
            let first = movers().next().expect("at least two movers");
            let mut best = (first, f64::INFINITY);
            for i in movers() {
                for j in movers() {
                    if i != j {
                        let d = system.centers[i].distance(system.centers[j]);
                        if d < best.1 {
                            best = (i, d);
                        }
                    }
                }
            }
            return Some(Directive {
                robot: RobotId(best.0),
                motion: MotionControl::Full,
            });
        }
        let pick = system.nth_active(self.cursor % count)?;
        self.cursor = self.cursor.wrapping_add(1);
        Some(Directive {
            robot: RobotId(pick),
            motion: MotionControl::Full,
        })
    }

    fn name(&self) -> &'static str {
        "collision-seeker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot<'a>(
        phases: &'a [Phase],
        centers: &'a [Point],
        targets: &'a [Option<Point>],
    ) -> SystemSnapshot<'a> {
        SystemSnapshot {
            phases,
            centers,
            targets,
            delta: 0.01,
        }
    }

    fn three_waiting() -> (Vec<Phase>, Vec<Point>, Vec<Option<Point>>) {
        (
            vec![Phase::Wait; 3],
            vec![
                Point::new(0.0, 0.0),
                Point::new(5.0, 0.0),
                Point::new(10.0, 0.0),
            ],
            vec![None; 3],
        )
    }

    #[test]
    fn round_robin_cycles_over_active_robots() {
        let (phases, centers, targets) = three_waiting();
        let snap = snapshot(&phases, &centers, &targets);
        let mut adv = RoundRobin::new();
        let picks: Vec<usize> = (0..6).map(|_| adv.next(&snap).unwrap().robot.0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn terminated_robots_are_never_scheduled() {
        let (mut phases, centers, targets) = three_waiting();
        phases[1] = Phase::Terminate;
        let snap = snapshot(&phases, &centers, &targets);
        let mut adv = RoundRobin::new();
        for _ in 0..10 {
            assert_ne!(adv.next(&snap).unwrap().robot.0, 1);
        }
    }

    #[test]
    fn all_terminated_yields_none() {
        let phases = vec![Phase::Terminate; 2];
        let centers = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        let targets = vec![None, None];
        let snap = snapshot(&phases, &centers, &targets);
        assert!(RoundRobin::new().next(&snap).is_none());
        assert!(RandomAsync::new(7).next(&snap).is_none());
        assert!(StopHappy::new().next(&snap).is_none());
        assert!(SlowRobot::new(0).next(&snap).is_none());
        assert!(CollisionSeeker::new().next(&snap).is_none());
    }

    #[test]
    fn random_async_is_deterministic_per_seed_and_fair() {
        let (phases, centers, targets) = three_waiting();
        let snap = snapshot(&phases, &centers, &targets);
        let picks = |seed: u64| -> Vec<usize> {
            let mut adv = RandomAsync::new(seed);
            (0..50).map(|_| adv.next(&snap).unwrap().robot.0).collect()
        };
        assert_eq!(picks(42), picks(42));
        let p = picks(42);
        for i in 0..3 {
            assert!(p.contains(&i), "robot {i} must be scheduled eventually");
        }
    }

    #[test]
    fn stop_happy_always_limits_motion() {
        let (phases, centers, targets) = three_waiting();
        let snap = snapshot(&phases, &centers, &targets);
        let mut adv = StopHappy::new();
        for _ in 0..5 {
            assert_eq!(
                adv.next(&snap).unwrap().motion,
                MotionControl::StopAfterDelta
            );
        }
    }

    #[test]
    fn slow_robot_only_slows_the_victim() {
        let (phases, centers, targets) = three_waiting();
        let snap = snapshot(&phases, &centers, &targets);
        let mut adv = SlowRobot::new(2);
        for _ in 0..9 {
            let d = adv.next(&snap).unwrap();
            if d.robot.0 == 2 {
                assert_eq!(d.motion, MotionControl::StopAfterDelta);
            } else {
                assert_eq!(d.motion, MotionControl::Full);
            }
        }
    }

    #[test]
    fn collision_seeker_prefers_the_closest_pair_of_movers() {
        let phases = vec![Phase::Move, Phase::Move, Phase::Move, Phase::Wait];
        let centers = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(100.0, 0.0),
        ];
        let targets = vec![
            Some(Point::new(1.0, 0.0)),
            Some(Point::new(2.0, 0.0)),
            Some(Point::new(40.0, 0.0)),
            None,
        ];
        let snap = snapshot(&phases, &centers, &targets);
        let pick = CollisionSeeker::new().next(&snap).unwrap().robot.0;
        assert!(
            pick == 0 || pick == 1,
            "one of the closest movers is chosen"
        );
    }

    #[test]
    fn slow_robot_for_system_has_no_victim_for_one_robot() {
        // The degenerate 1-robot system: no "rest of the system" to outpace
        // the victim, so the schedule is a plain full-speed round-robin.
        let phases = vec![Phase::Wait];
        let centers = vec![Point::new(0.0, 0.0)];
        let targets = vec![None];
        let snap = snapshot(&phases, &centers, &targets);
        let mut adv = SlowRobot::for_system(5, 1);
        assert_eq!(adv.victim, None);
        for _ in 0..4 {
            let d = adv.next(&snap).unwrap();
            assert_eq!(d.robot.0, 0);
            assert_eq!(d.motion, MotionControl::Full);
        }
        // Multi-robot systems keep the seed-derived victim.
        assert_eq!(SlowRobot::for_system(7, 3).victim, Some(1));
    }

    #[test]
    fn crash_stop_kills_victims_and_settles_on_survivors() {
        let (phases, centers, targets) = three_waiting();
        let snap = snapshot(&phases, &centers, &targets);
        let mut adv = CrashStop::new(9, 3, 1);
        assert_eq!(adv.victims.len(), 1);
        let victim = adv.victims[0];
        // Before the fault fires every robot is scheduled round-robin.
        let warmup: Vec<usize> = (0..adv.fault_at)
            .map(|_| adv.next(&snap).unwrap().robot.0)
            .collect();
        assert!(warmup.contains(&victim));
        assert!(!adv.permanently_stopped(victim));
        // From the fault on, the victim is never scheduled again.
        for _ in 0..30 {
            assert_ne!(adv.next(&snap).unwrap().robot.0, victim);
        }
        assert!(adv.permanently_stopped(victim));
        assert_eq!(adv.fault_stats().crashed_robots, 1);
        // Once the survivors terminate, the schedule ends even though the
        // victim never reached Terminate — no busy-wait on the dead.
        let mut done = vec![Phase::Terminate; 3];
        done[victim] = Phase::Wait;
        let done_snap = snapshot(&done, &centers, &targets);
        assert!(adv.next(&done_snap).is_none());
    }

    #[test]
    fn crash_stop_clamps_k_below_n() {
        // k = n would leave no survivor; the clamp keeps one alive, and a
        // 1-robot system suffers no fault at all.
        assert_eq!(CrashStop::new(1, 3, 99).victims.len(), 2);
        assert!(CrashStop::new(1, 1, 1).victims.is_empty());
    }

    #[test]
    fn persistent_sleep_starves_then_resumes() {
        let (phases, centers, targets) = three_waiting();
        let snap = snapshot(&phases, &centers, &targets);
        let mut adv = PersistentSleep::new(3, 3, 1);
        let victim = adv.victims[0];
        let (from, until) = (adv.sleep_from, adv.sleep_until);
        // Inside the window the victim is starved.
        for _ in 0..until {
            let d = adv.next(&snap).unwrap();
            if adv.clock > from && adv.clock <= until {
                assert_ne!(d.robot.0, victim, "starved robot scheduled in-window");
            }
        }
        assert!(adv.fault_stats().starved_directives > 0);
        // After the window the victim is scheduled again (fault is finite).
        let resumed: Vec<usize> = (0..6).map(|_| adv.next(&snap).unwrap().robot.0).collect();
        assert!(resumed.contains(&victim));
        assert!(!adv.permanently_stopped(victim));
    }

    #[test]
    fn persistent_sleep_wakes_victims_when_everyone_else_terminates() {
        let centers = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        let targets = vec![None, None];
        let mut adv = PersistentSleep::new(3, 2, 1);
        let victim = adv.victims[0];
        // Jump into the middle of the sleep window, with every awake robot
        // already terminated: the victim must be woken early, not deadlock.
        adv.clock = adv.sleep_from + 1;
        let mut phases = vec![Phase::Terminate; 2];
        phases[victim] = Phase::Wait;
        let snap = snapshot(&phases, &centers, &targets);
        let d = adv.next(&snap).expect("the sleeping victim must be woken");
        assert_eq!(d.robot.0, victim);
        assert!(adv.sleep_until <= adv.clock, "the window is over for good");
    }

    #[test]
    fn slow_coalition_truncates_exactly_its_victims() {
        let (phases, centers, targets) = three_waiting();
        let snap = snapshot(&phases, &centers, &targets);
        let mut adv = SlowCoalition::new(11, 3, 2);
        assert_eq!(adv.victims.len(), 2);
        for _ in 0..9 {
            let d = adv.next(&snap).unwrap();
            let expected = if adv.victims.binary_search(&d.robot.0).is_ok() {
                MotionControl::StopAfterDelta
            } else {
                MotionControl::Full
            };
            assert_eq!(d.motion, expected);
        }
        assert_eq!(adv.fault_stats().truncated_directives, 6);
    }

    #[test]
    fn fault_adversaries_yield_none_when_all_terminated() {
        let phases = vec![Phase::Terminate; 2];
        let centers = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        let targets = vec![None, None];
        let snap = snapshot(&phases, &centers, &targets);
        assert!(CrashStop::new(1, 2, 1).next(&snap).is_none());
        assert!(PersistentSleep::new(1, 2, 1).next(&snap).is_none());
        assert!(SlowCoalition::new(1, 2, 1).next(&snap).is_none());
    }

    #[test]
    fn snapshot_helpers() {
        let phases = vec![Phase::Move, Phase::Terminate];
        let centers = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        let targets = vec![Some(Point::new(3.0, 4.0)), None];
        let snap = snapshot(&phases, &centers, &targets);
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
        assert_eq!(snap.active(), vec![0]);
        assert!((snap.remaining(0) - 5.0).abs() < 1e-12);
        assert_eq!(snap.remaining(1), 0.0);
    }
}
