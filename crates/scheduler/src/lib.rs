//! # fatrobots-scheduler
//!
//! Asynchrony as an adversary: the event model of Section 2 of the paper.
//!
//! The paper models asynchrony as an *online, omniscient adversary* that
//! chooses which robot takes the next step, controls the speed of moving
//! robots, may stop them mid-flight and may cause collisions, subject to two
//! liveness conditions (every robot takes infinitely many steps; every move
//! covers at least an unknown distance δ unless the target is closer).
//!
//! This crate provides:
//!
//! * [`Event`] — the seven event kinds of the paper (`Look`, `Compute`,
//!   `Done`, `Move`, `Stop`, `Collide`, `Arrive`), used for execution traces;
//! * [`Adversary`] — the strategy interface: given a snapshot of the system
//!   the adversary picks which robot acts next and how far it may travel if
//!   it is moving;
//! * concrete adversaries ([`adversary::RoundRobin`],
//!   [`adversary::RandomAsync`], [`adversary::StopHappy`],
//!   [`adversary::SlowRobot`], [`adversary::CollisionSeeker`]) covering the
//!   spectrum from friendly to hostile scheduling, including the schedules
//!   that drive the paper's type-1/type-2 *bad configurations*;
//! * fault injectors ([`adversary::CrashStop`], [`adversary::PersistentSleep`],
//!   [`adversary::SlowCoalition`]) that violate the activation-fairness
//!   assumption the paper's proof relies on, reporting their damage through
//!   [`adversary::FaultStats`] and (for permanent crashes)
//!   [`Adversary::permanently_stopped`];
//! * [`liveness::Liveness`] — the δ parameter and the clamping rule the
//!   engine uses to enforce liveness condition 2.
//!
//! The actual execution of the chosen steps (snapshotting, running the local
//! algorithm, integrating motion, detecting contacts) lives in
//! `fatrobots-sim`; this crate deliberately knows nothing about the gathering
//! algorithm, only about scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod event;
pub mod liveness;

pub use adversary::{
    Adversary, CollisionSeeker, CrashStop, Directive, FaultStats, MotionControl, PersistentSleep,
    RandomAsync, RoundRobin, SlowCoalition, SlowRobot, StopHappy, SystemSnapshot,
};
pub use event::Event;
pub use liveness::Liveness;
