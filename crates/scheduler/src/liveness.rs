//! The liveness conditions of Section 2.

/// The liveness parameters the adversary must respect.
///
/// Condition 1 (every robot takes infinitely many steps) is guaranteed by the
/// adversary implementations themselves; condition 2 (every move covers at
/// least δ unless the target is closer) is enforced by the engine through
/// [`Liveness::clamp_travel`]. The robots — and their local algorithms —
/// never learn δ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Liveness {
    delta: f64,
}

impl Liveness {
    /// Creates liveness parameters with the given δ.
    ///
    /// # Panics
    /// Panics if `delta` is not strictly positive.
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0, "the liveness distance δ must be positive");
        Liveness { delta }
    }

    /// The minimum progress distance δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Clamp a travel distance requested by the adversary: the robot must
    /// cover at least `min(remaining, δ)` and may cover at most `remaining`
    /// (the full distance to its target).
    pub fn clamp_travel(&self, requested: f64, remaining: f64) -> f64 {
        let lower = self.delta.min(remaining);
        requested.max(lower).min(remaining)
    }
}

impl Default for Liveness {
    /// A δ of 10⁻³ robot radii: small enough to exercise the asynchrony, far
    /// smaller than any algorithm step.
    fn default() -> Self {
        Liveness::new(1e-3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamping_respects_delta_and_remaining() {
        let l = Liveness::new(0.5);
        // Requests below δ are raised to δ.
        assert_eq!(l.clamp_travel(0.1, 10.0), 0.5);
        // Requests above the remaining distance are capped.
        assert_eq!(l.clamp_travel(100.0, 3.0), 3.0);
        // A target closer than δ only requires the remaining distance.
        assert_eq!(l.clamp_travel(0.0, 0.2), 0.2);
        // Reasonable requests pass through unchanged.
        assert_eq!(l.clamp_travel(2.0, 10.0), 2.0);
    }

    #[test]
    fn default_delta_is_small_and_positive() {
        let l = Liveness::default();
        assert!(l.delta() > 0.0 && l.delta() < 0.01);
    }

    #[test]
    #[should_panic]
    fn non_positive_delta_is_rejected() {
        let _ = Liveness::new(0.0);
    }
}
