//! E5 — the paper's algorithm versus the baseline strategies on the same
//! workload (the baselines plateau, so their runs are bounded by a smaller
//! event budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fatrobots_sim::experiment::{run, AdversaryKind, RunSpec, StrategyKind};
use fatrobots_sim::init::Shape;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    for strategy in StrategyKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("n6", strategy.name()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    run(&RunSpec {
                        shape: Shape::Circle,
                        adversary: AdversaryKind::RoundRobin,
                        strategy,
                        max_events: if strategy == StrategyKind::Paper {
                            120_000
                        } else {
                            10_000
                        },
                        ..RunSpec::new(6, 4)
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
