//! E4 — the cost of hostile scheduling: the same workload under each
//! adversary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fatrobots_sim::experiment::{run, AdversaryKind, RunSpec, StrategyKind};
use fatrobots_sim::init::Shape;

fn bench_adversaries(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversaries");
    group.sample_size(10);
    for adversary in [
        AdversaryKind::RoundRobin,
        AdversaryKind::RandomAsync,
        AdversaryKind::CollisionSeeker,
    ] {
        group.bench_with_input(
            BenchmarkId::new("gather_n5", adversary.name()),
            &adversary,
            |b, &adversary| {
                b.iter(|| {
                    run(&RunSpec {
                        shape: Shape::Circle,
                        adversary,
                        strategy: StrategyKind::Paper,
                        max_events: 80_000,
                        ..RunSpec::new(5, 3)
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_adversaries);
criterion_main!(benches);
