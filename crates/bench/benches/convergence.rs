//! E3 — the convergence phase: gathering from a configuration that is
//! already fully visible (robots spread on a circle).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fatrobots_sim::experiment::{run, AdversaryKind, RunSpec, StrategyKind};
use fatrobots_sim::init::Shape;

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence");
    group.sample_size(10);
    for &n in &[4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::new("from_circle", n), &n, |b, &n| {
            b.iter(|| {
                run(&RunSpec {
                    shape: Shape::Circle,
                    adversary: AdversaryKind::RoundRobin,
                    strategy: StrategyKind::Paper,
                    ..RunSpec::new(n, 2)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);
