//! E1 — end-to-end gathering runs as the number of robots grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fatrobots_sim::experiment::{run, AdversaryKind, RunSpec, StrategyKind};
use fatrobots_sim::init::Shape;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("gathering_scaling");
    group.sample_size(10);
    for &n in &[3usize, 5, 8] {
        group.bench_with_input(BenchmarkId::new("gather", n), &n, |b, &n| {
            b.iter(|| {
                run(&RunSpec {
                    shape: Shape::Circle,
                    adversary: AdversaryKind::RoundRobin,
                    strategy: StrategyKind::Paper,
                    ..RunSpec::new(n, 11)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
