//! E9 — Look-snapshot cost under the paper's event-serial schedule: cached
//! incremental world vs from-scratch recomputation.
//!
//! The workload is honest by construction: a real simulation (the paper's
//! algorithm under a round-robin schedule) is run once per size, and the
//! exact sequence of world operations it performs — every single-robot
//! position update and every Look snapshot — is recorded. The benchmark
//! then replays that trace against a [`World`] in each mode, so both series
//! pay for precisely the operations the engine performs, in the order the
//! event-serial model produces them (including idle decisions, truncated
//! moves and the occlusion-heavy mid-game configurations where the
//! witness-segment search is expensive).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fatrobots_core::{AlgorithmParams, LocalAlgorithm};
use fatrobots_geometry::visibility::VisibilityConfig;
use fatrobots_geometry::Point;
use fatrobots_scheduler::{Event, RoundRobin};
use fatrobots_sim::engine::{SimConfig, Simulator};
use fatrobots_sim::init::Shape;
use fatrobots_sim::world::{World, WorldMode};

/// One recorded world operation.
#[derive(Clone, Copy)]
enum Op {
    /// Robot `i` ended up at the given position after an event.
    Move(usize, Point),
    /// Robot `i` took a Look snapshot.
    Look(usize),
}

/// Runs the real engine, skipping the first `warm` events (so recording
/// starts mid-gathering, where the simulator actually spends its
/// wall-clock), then records the world-state operations of the next
/// `events` events together with the centers at recording start.
fn record_trace(n: usize, seed: u64, warm: usize, events: usize) -> (Vec<Point>, Vec<Op>) {
    let mut sim = Simulator::new(
        Shape::Random.generate(n, seed),
        Box::new(LocalAlgorithm::new(AlgorithmParams::for_n(n))),
        Box::new(RoundRobin::new()),
        SimConfig::default(),
    );
    for _ in 0..warm {
        if sim.step().is_none() {
            break;
        }
    }
    let start = sim.centers().to_vec();
    let mut before = start.clone();
    let mut ops = Vec::with_capacity(events);
    for _ in 0..events {
        let Some(event) = sim.step() else { break };
        match event {
            Event::Look(id) => ops.push(Op::Look(id.0)),
            _ => {
                // At most one robot moved; record its new position.
                for (i, (&a, &b)) in before.iter().zip(sim.centers()).enumerate() {
                    if a != b {
                        ops.push(Op::Move(i, b));
                    }
                }
            }
        }
        before.copy_from_slice(sim.centers());
    }
    (start, ops)
}

/// Replays the trace against a fresh world in the given mode.
fn replay(start: &[Point], ops: &[Op], mode: WorldMode) -> usize {
    let mut world = World::new(start.to_vec(), VisibilityConfig::default(), mode);
    let mut seen_total = 0usize;
    for &op in ops {
        match op {
            Op::Move(i, p) => world.move_robot(i, p),
            Op::Look(i) => seen_total += world.visible_of(i).len(),
        }
    }
    seen_total
}

fn bench_snapshot_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("look_snapshot");
    group.sample_size(10);
    // Warm-up skips put the recording window mid-gathering; the window is
    // long enough that the one-time cost of filling the cold cache (n²/2
    // pairs) is a small fraction of the replayed pair lookups.
    for &(n, warm, events) in &[(8usize, 0, 4_000), (32, 20_000, 4_000), (96, 20_000, 6_000)] {
        let (start, ops) = record_trace(n, 3, warm, events);
        let looks = ops.iter().filter(|op| matches!(op, Op::Look(_))).count();
        // Both modes must replay to the same answers — the equivalence the
        // determinism suite pins, re-checked here on the bench workload.
        assert_eq!(
            replay(&start, &ops, WorldMode::Incremental),
            replay(&start, &ops, WorldMode::Scratch),
            "cached and scratch replays diverged at n={n}"
        );
        let input = (start, ops);
        group.bench_with_input(
            BenchmarkId::new("cached", format!("n={n}/looks={looks}")),
            &input,
            |b, (start, ops)| b.iter(|| black_box(replay(start, ops, WorldMode::Incremental))),
        );
        group.bench_with_input(
            BenchmarkId::new("scratch", format!("n={n}/looks={looks}")),
            &input,
            |b, (start, ops)| b.iter(|| black_box(replay(start, ops, WorldMode::Scratch))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_snapshot_cache);
criterion_main!(benches);
