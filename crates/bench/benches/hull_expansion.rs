//! E2 — the expansion phase: time (events) to reach full visibility from
//! occlusion-heavy starts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fatrobots_sim::experiment::{run, AdversaryKind, RunSpec, StrategyKind};
use fatrobots_sim::init::Shape;

fn bench_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("hull_expansion");
    group.sample_size(10);
    for shape in [Shape::Line, Shape::Clusters] {
        group.bench_with_input(
            BenchmarkId::new("to_full_visibility", shape.name()),
            &shape,
            |b, &shape| {
                b.iter(|| {
                    run(&RunSpec {
                        shape,
                        adversary: AdversaryKind::RoundRobin,
                        strategy: StrategyKind::Paper,
                        max_events: 60_000,
                        ..RunSpec::new(5, 1)
                    })
                    .first_fully_visible
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_expansion);
criterion_main!(benches);
