//! E10 — Compute-kernel latency: `decide()` on hull-, interior- and
//! converge-shaped views, scratch-arena path vs the allocating traced path.
//!
//! Three view families cover the three expensive regions of the Compute
//! state graph (Figure 4):
//!
//! * **hull** — the observer is on the hull of a view with an interior
//!   robot and a partial view, so the decision runs the band tests plus the
//!   `onCH2` projection of Procedure `NotOnStraightLine`;
//! * **interior** — the observer is strictly inside the hull, so the
//!   decision scans `Find-Points` candidates over the whole boundary;
//! * **converge** — every robot is on the hull in separated clusters, so
//!   the decision builds the component partition of Procedure
//!   `NotConnected`.
//!
//! Each family is measured twice per size: `scratch` is the engine's hot
//! path (`run_with`, reusing one `ComputeScratch` arena — no steady-state
//! allocation), `traced` is the pre-arena shape of the pipeline (fresh
//! buffers plus trace recording per decision). The `whole_run` rows time a
//! complete bounded simulation so the Compute win composes with the
//! snapshot-cache numbers of the `snapshot_cache` bench.
//!
//! Set `FATROBOTS_BENCH_QUICK=1` (the CI bench-report job does) to run a
//! reduced sample count.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fatrobots_core::{AlgorithmParams, ComputeScratch, ComputeState, LocalAlgorithm};
use fatrobots_geometry::Point;
use fatrobots_model::LocalView;
use fatrobots_scheduler::Liveness;
use fatrobots_sim::engine::{SimConfig, Simulator};
use fatrobots_sim::experiment::{AdversaryKind, RunSpec, StrategyKind};
use fatrobots_sim::init::Shape;

/// `true` when the CI quick mode is requested.
fn quick() -> bool {
    std::env::var_os("FATROBOTS_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// `n` points on a circle large enough that no two robots overlap, with a
/// small angular offset so no triple is exactly collinear.
fn circle(n: usize, radius: f64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let a = 2.0 * std::f64::consts::PI * i as f64 / n as f64 + 0.1;
            Point::new(radius * a.cos(), radius * a.sin())
        })
        .collect()
}

/// A hull-shaped view: the observer on the hull, one robot pulled into the
/// interior, and one robot missing from the view (`|V| < n`), so the
/// decision takes the projection path of Procedure `NotOnStraightLine`.
fn hull_view(n: usize) -> LocalView {
    let pts = circle(n, n as f64);
    let me = pts[0];
    let mut others: Vec<Point> = pts[1..n - 1].to_vec();
    // Pull one robot into the hull interior.
    let interior_idx = others.len() / 2;
    let pulled = others[interior_idx];
    others[interior_idx] = Point::new(pulled.x * 0.2, pulled.y * 0.2);
    LocalView::new(me, others, n)
}

/// An interior-shaped view: the observer strictly inside the hull of the
/// others, nobody touching, so the decision scans `Find-Points` candidates.
fn interior_view(n: usize) -> LocalView {
    let pts = circle(n - 1, n as f64);
    let me = Point::new(0.5, 0.3);
    LocalView::new(me, pts, n)
}

/// A converge-shaped view: all robots on the hull in four separated,
/// equally sized clusters of touching robots, so the decision builds the
/// component partition of Procedure `NotConnected`.
fn converge_view(n: usize) -> LocalView {
    let radius = 10.0 * n as f64;
    let touch_step = 2.0 * (1.0 / radius).asin();
    let groups = 4;
    let per_group = n / groups;
    let mut pts = Vec::with_capacity(n);
    for g in 0..groups {
        let start = g as f64 * std::f64::consts::FRAC_PI_2 + 0.05;
        for k in 0..per_group {
            let a = start + k as f64 * touch_step;
            pts.push(Point::new(radius * a.cos(), radius * a.sin()));
        }
    }
    // Round n down to a multiple of the group count for the view.
    let me = pts[0];
    let others = pts[1..].to_vec();
    let n_view = others.len() + 1;
    LocalView::new(me, others, n_view)
}

/// Sanity-pins each family to the Compute region it is meant to exercise,
/// so a geometry regression cannot silently turn the bench into a
/// measurement of the wrong procedures.
fn assert_family_shape(view: &LocalView, expected: ComputeState) {
    let algo = LocalAlgorithm::new(AlgorithmParams::for_n(view.n()));
    let out = algo.run_traced(view);
    assert!(
        out.trace.contains(&expected),
        "bench view does not reach {expected} (trace {:?})",
        out.trace
    );
}

/// One bench view family: label, constructor, and the Compute state it
/// must reach.
type ViewFamily = (&'static str, fn(usize) -> LocalView, ComputeState);

fn bench_compute_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_kernels");
    group.sample_size(if quick() { 3 } else { 10 });

    let families: [ViewFamily; 3] = [
        ("hull", hull_view, ComputeState::NotOnStraightLine),
        ("interior", interior_view, ComputeState::NotOnConvexHull),
        ("converge", converge_view, ComputeState::NotConnected),
    ];
    for &(name, make, expected) in &families {
        for &n in &[8usize, 32, 96] {
            let view = make(n);
            assert_family_shape(&view, expected);
            let algo = LocalAlgorithm::new(AlgorithmParams::for_n(view.n()));

            // The engine's path: one arena reused across every decision.
            let mut scratch = ComputeScratch::default();
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/scratch"), format!("n={n}")),
                &view,
                |b, view| b.iter(|| black_box(algo.run_with(view, &mut scratch))),
            );
            // The pre-arena pipeline: fresh buffers plus a trace per call.
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/traced"), format!("n={n}")),
                &view,
                |b, view| b.iter(|| black_box(algo.run_traced(view).decision)),
            );
        }
    }
    group.finish();

    // Whole-run rows: a bounded end-to-end simulation, so the Compute win
    // composes with the snapshot-cache numbers (same engine, same seeds).
    // `run` is the production engine (decision memoization on);
    // `run_nocache` forces every Compute event through the full pipeline —
    // the PR4-shaped event loop — so one bench invocation measures the
    // output-sensitive speedup directly.
    let mut whole = c.benchmark_group("compute_whole_run");
    whole.sample_size(if quick() { 2 } else { 10 });
    // The n = 96 row runs E1's actual large-n event budget
    // (`LARGE_N_EVENT_CAP`), so the row times the workload the experiment
    // tables really sweep — deep into the moving-oscillation regime — not
    // just the start-up transient.
    for &(n, max_events) in &[
        (8usize, 20_000usize),
        (32, 12_000),
        (96, fatrobots_sim::experiment::LARGE_N_EVENT_CAP),
    ] {
        let spec = RunSpec {
            shape: Shape::Random,
            adversary: AdversaryKind::RoundRobin,
            strategy: StrategyKind::Paper,
            max_events,
            ..RunSpec::new(n, 3)
        };
        whole.bench_with_input(
            BenchmarkId::new("run", format!("n={n}/events={max_events}")),
            &spec,
            |b, spec| b.iter(|| black_box(fatrobots_sim::experiment::run(spec).events)),
        );
        whole.bench_with_input(
            BenchmarkId::new("run_nocache", format!("n={n}/events={max_events}")),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let mut sim = Simulator::new(
                        spec.shape.generate(spec.n, spec.seed),
                        spec.strategy.build(spec.n),
                        spec.adversary.build(spec.seed, spec.n),
                        SimConfig {
                            max_events: spec.max_events,
                            liveness: Liveness::new(spec.delta),
                            decision_cache: false,
                            ..SimConfig::default()
                        },
                    );
                    black_box(sim.run().events)
                })
            },
        );
    }
    whole.finish();
}

criterion_group!(benches, bench_compute_kernels);
criterion_main!(benches);
