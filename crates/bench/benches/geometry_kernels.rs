//! E8 — micro-benchmarks of the geometric kernels a single Compute step is
//! built from: convex hull, Find-Points, hull components and the visibility
//! oracle, as a function of the view size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fatrobots_core::functions::{connected_components, find_points};
use fatrobots_geometry::hull::ConvexHull;
use fatrobots_geometry::visibility::{visible_set, VisibilityConfig};
use fatrobots_geometry::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_centers(m: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = (m as f64 * 16.0).sqrt().max(10.0) * 2.0;
    let mut out: Vec<Point> = Vec::with_capacity(m);
    while out.len() < m {
        let p = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
        if out.iter().all(|q| q.distance(p) > 2.3) {
            out.push(p);
        }
    }
    out
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("geometry_kernels");
    group.sample_size(20);
    for &m in &[8usize, 16, 32, 64] {
        let centers = random_centers(m, 42);
        let hull = ConvexHull::from_points(&centers);
        let boundary = hull.boundary();
        group.bench_with_input(BenchmarkId::new("convex_hull", m), &centers, |b, pts| {
            b.iter(|| ConvexHull::from_points(pts))
        });
        group.bench_with_input(BenchmarkId::new("find_points", m), &boundary, |b, pts| {
            b.iter(|| find_points(pts, m))
        });
        group.bench_with_input(
            BenchmarkId::new("connected_components", m),
            &boundary,
            |b, pts| b.iter(|| connected_components(pts, 1.0 / (2.0 * m as f64))),
        );
        group.bench_with_input(BenchmarkId::new("visible_set", m), &centers, |b, pts| {
            let cfg = VisibilityConfig::default();
            b.iter(|| visible_set(0, pts, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
