//! A minimal hand-rolled JSON layer.
//!
//! The workspace is offline (no serde), but `bench_report.json` still has to
//! be real JSON so CI artifacts are consumable by ordinary tooling. This
//! module provides the three pieces the report needs and nothing more:
//!
//! * [`JsonValue`] — an ordered document model (object keys keep insertion
//!   order so reports are stable and diffable);
//! * a pretty writer ([`JsonValue::to_pretty`]) with full string escaping
//!   and RFC 8259-safe number handling (non-finite floats become `null`);
//! * a strict recursive-descent parser ([`parse`]) used by the integration
//!   tests to prove the emitted report round-trips.

use std::fmt::Write as _;

/// An ordered JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from floats so counts print as `3`, not
    /// `3.0`).
    Int(i64),
    /// A finite float. Non-finite values are rejected at write time.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A float value, mapping non-finite inputs to `null` (JSON has no
    /// `NaN`/`Infinity`).
    pub fn num(v: f64) -> JsonValue {
        if v.is_finite() {
            JsonValue::Num(v)
        } else {
            JsonValue::Null
        }
    }

    /// An optional float: `None` and non-finite both become `null`.
    pub fn opt_num(v: Option<f64>) -> JsonValue {
        v.map_or(JsonValue::Null, JsonValue::num)
    }

    /// An optional integer-valued count.
    pub fn opt_int(v: Option<usize>) -> JsonValue {
        v.map_or(JsonValue::Null, |x| JsonValue::Int(x as i64))
    }

    /// Looks a key up in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array; `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The contents of a string; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Num(v) => {
                // `{:?}` is the shortest round-trippable decimal form that
                // keeps a decimal point on whole values (`1.0`, not `1`), so
                // floats never parse back as integers; `1e-3` style output
                // is valid JSON.
                debug_assert!(v.is_finite());
                let _ = write!(out, "{v:?}");
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, rejecting trailing garbage.
///
/// Strict enough for round-trip tests: objects, arrays, strings with the
/// standard escapes (including `\uXXXX` with surrogate pairs), numbers,
/// booleans and `null`.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing garbage at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("unpaired surrogate".into());
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("unpaired surrogate")?
                            };
                            out.push(c);
                            continue;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unmodified;
                    // re-slice from the source to keep char boundaries.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let digits = &self.bytes[self.pos..end];
        // from_str_radix alone is too lenient (it accepts a leading '+').
        if !digits.iter().all(u8::is_ascii_hexdigit) {
            return Err(format!("non-hex \\u escape at byte {}", self.pos));
        }
        let s = std::str::from_utf8(digits).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        if self.digits() == 0 {
            return Err(format!("expected a digit at byte {}", self.pos));
        }
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(format!("leading zero in number at byte {int_start}"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if self.digits() == 0 {
                return Err(format!("expected a fraction digit at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(format!("expected an exponent digit at byte {}", self.pos));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|e| e.to_string())
        } else {
            text.parse::<i64>()
                .map(JsonValue::Int)
                .map_err(|e| e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_printing_nests_and_indents() {
        let doc = JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("report".into())),
            ("runs".into(), JsonValue::Int(3)),
            (
                "rates".into(),
                JsonValue::Arr(vec![JsonValue::Num(0.5), JsonValue::Null]),
            ),
            ("empty".into(), JsonValue::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        assert!(text.starts_with("{\n  \"name\": \"report\""));
        assert!(text.contains("\"rates\": [\n    0.5,\n    null\n  ]"));
        assert!(text.contains("\"empty\": {}"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escaping_covers_quotes_backslashes_and_control_chars() {
        let doc = JsonValue::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(doc.to_pretty(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"\n");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::num(f64::NAN), JsonValue::Null);
        assert_eq!(JsonValue::num(f64::INFINITY), JsonValue::Null);
        assert_eq!(JsonValue::num(1.5), JsonValue::Num(1.5));
        assert_eq!(JsonValue::opt_num(None), JsonValue::Null);
        assert_eq!(JsonValue::opt_int(Some(7)), JsonValue::Int(7));
    }

    #[test]
    fn parser_round_trips_the_writer() {
        let doc = JsonValue::Obj(vec![
            ("s".into(), JsonValue::Str("quote \" slash \\ né\n".into())),
            ("i".into(), JsonValue::Int(-42)),
            ("f".into(), JsonValue::Num(1e-3)),
            // Whole-valued floats must stay floats across the round-trip.
            ("g".into(), JsonValue::Num(1.0)),
            ("b".into(), JsonValue::Bool(true)),
            ("z".into(), JsonValue::Null),
            (
                "a".into(),
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Num(2.25)]),
            ),
        ]);
        assert_eq!(parse(&doc.to_pretty()).unwrap(), doc);
    }

    #[test]
    fn parser_accepts_unicode_escapes_and_raw_unicode() {
        assert_eq!(parse(r#""é""#).unwrap(), JsonValue::Str("é".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), JsonValue::Str("😀".into()));
        assert_eq!(parse(r#""é😀""#).unwrap(), JsonValue::Str("é😀".into()));
        assert_eq!(parse("\"\\u00e9\"").unwrap(), JsonValue::Str("é".into()));
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("😀".into())
        );
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse(r#""\q""#).is_err());
        assert!(parse("tru").is_err());
    }

    #[test]
    fn parser_rejects_malformed_numbers_and_escapes() {
        assert!(parse("5.").is_err());
        assert!(parse(".5").is_err());
        assert!(parse("01").is_err());
        assert!(parse("-").is_err());
        assert!(parse("1e").is_err());
        assert!(parse("1e+").is_err());
        assert!(parse(r#""\u+abc""#).is_err());
        assert!(parse(r#""\u12g4""#).is_err());
        assert_eq!(parse("-0").unwrap(), JsonValue::Int(0));
        assert_eq!(parse("0.5").unwrap(), JsonValue::Num(0.5));
        assert_eq!(parse("1e5").unwrap(), JsonValue::Num(1e5));
        assert_eq!(parse("-0.25e-2").unwrap(), JsonValue::Num(-0.0025));
    }

    #[test]
    fn object_lookup_helpers() {
        let doc = parse(r#"{"a": [1, 2], "b": "x"}"#).unwrap();
        assert_eq!(doc.get("a").and_then(JsonValue::as_arr).unwrap().len(), 2);
        assert_eq!(doc.get("b").and_then(JsonValue::as_str), Some("x"));
        assert!(doc.get("c").is_none());
    }
}
