//! `report` — regenerate the experiment tables of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p fatrobots-bench --bin report                  # all tables
//! cargo run --release -p fatrobots-bench --bin report -- --e1         # one table
//! cargo run --release -p fatrobots-bench --bin report -- --quick      # smaller sweeps
//! cargo run --release -p fatrobots-bench --bin report -- --jobs 4     # parallel sweeps
//! cargo run --release -p fatrobots-bench --bin report -- --json out.json
//! cargo run --release -p fatrobots-bench --bin report -- --baseline old.json
//! ```
//!
//! Sweeps are dispatched through one shared `fatrobots_sim::sweep::SweepPool`
//! (spawned once per invocation, reused by every table), so table output is
//! byte-identical for every `--jobs` value. Unknown flags are an error (exit
//! code 2) — see `--help`. With `--baseline` the freshly computed rows are
//! diffed against a previous `bench_report.json` and the process exits with
//! code 1 when any row regressed beyond the threshold.

use std::process::ExitCode;

use fatrobots_bench::{
    diff_against_baseline, json, print_table, report_json, SupervisionReport,
    BASELINE_EVENTS_THRESHOLD, QUICK_SEEDS, STANDARD_SEEDS,
};
use fatrobots_sim::checkpoint::{write_atomic, CheckpointedSweep};
use fatrobots_sim::experiment::{
    adversary_table_spec, baseline_table_spec, delta_table_spec, expansion_table_spec,
    scale_table_spec, scaling_table_spec_with_cap, shape_table_spec, ExperimentTable, TableSpec,
    LARGE_N_EVENT_CAP, PROGRESS_EVERY_DEFAULT,
};
use fatrobots_sim::fuzz::{self, FuzzConfig, FuzzReport};
use fatrobots_sim::sweep::{self, SupervisionPolicy, SweepPool};

const USAGE: &str = "\
Usage: report [OPTIONS]
       report fuzz [--budget <N>] [--fuzz-seed <N>] [--out <DIR>] [--json <PATH>]

Regenerates the experiment tables of EXPERIMENTS.md. With no table flags,
every table is produced.

Table selection:
  --e1           E1  gathering cost vs number of robots
  --e2, --e3     E2/E3  hull expansion & convergence monotonicity by shape
  --e4           E4  behaviour under each adversary
  --e5           E5  the paper's algorithm vs the baselines
  --e6           E6  sensitivity to the liveness distance delta
  --e7           E7  sensitivity to the initial configuration shape
  --scale        SCALE  event throughput at n = 10^3 and 10^4 (hex packing,
                 sparse world; its event budget is also bounded by
                 --event-cap)
  --figures      print how to reproduce the figures (F1-F5)

Options:
  --quick        use the small seed set (3 seeds) and a reduced E1 sweep
  --shadow       run the exact-arithmetic shadow oracle alongside every
                 paper-algorithm run: every Compute decision is replayed
                 under the exact kernel and the per-run divergence tallies
                 land in the JSON report (schema v4 'shadow' records)
  --jobs <N>     worker threads for the sweeps (default: available cores;
                 output is byte-identical for every N)
  --threads <N>  intra-run threads for every simulator run (default: 1 =
                 the serial event loop; N > 1 routes runs through the
                 commutation-batching parallel executor, which is pinned
                 event-for-event identical to serial, so every table is
                 byte-identical for every N)
  --event-cap <N>
                 event budget for E1's large-n rows (default: 60000; must
                 be a positive integer). The cap only bounds rows at or
                 above the large-n threshold — small-n rows keep their
                 scale-with-n budget unless the cap is tighter
  --fail-fast    abort the whole report on the first failing run (the
                 pre-supervision behaviour). Without it a panicking or
                 hung run is retried once, then quarantined as a
                 structured failure row (schema v8 'supervision') while
                 every other run completes; the process still exits 1
  --checkpoint-dir <DIR>
                 journal sweep progress into DIR/journal.frck (crash-safe:
                 length-framed, checksummed, written atomically). A report
                 killed mid-sweep and re-run with the same flags resumes:
                 completed rows load from the journal, the in-flight run
                 replays, and the output is byte-identical to an
                 uninterrupted run modulo the schema-v8 checkpoint
                 counters. Incompatible with --fail-fast
  --watchdog-secs <N>
                 wall-clock budget per run attempt: a run exceeding it is
                 cancelled cooperatively and supervised like a panic
                 (retried, then quarantined). Incompatible with
                 --fail-fast
  --json <PATH>  also write every run and aggregate row to PATH as JSON
                 (parent directories are created; the write is atomic)
  --baseline <PATH>
                 diff the fresh rows against a previous bench_report.json:
                 prints per-row deltas and exits 1 when a row's gathered
                 rate dropped or its mean events grew beyond the threshold
  --baseline-threshold <PCT>
                 relative mean-events increase (in percent) beyond which a
                 row counts as a regression (default: 10; gathered-rate
                 drops of any size always fail). Requires --baseline
  -h, --help     print this help and exit

Fuzz mode (report fuzz):
  Runs the shrinking scenario fuzzer instead of the tables: sweeps shape x
  adversary x fault x n x seed scenarios under a total event budget, flags
  every run that fails to gather within its per-scenario cap, shrinks each
  find via deterministic replay and (with --out) writes one regression
  fixture per find. Deterministic in (--fuzz-seed, --budget). Table and
  sweep flags (--e*, --quick, --shadow, --jobs, --threads, --event-cap,
  --baseline, --baseline-threshold, --figures) are rejected in fuzz mode.
  --budget <N>   total discovery event budget (default: 400000)
  --fuzz-seed <N>
                 seed of the random scenario generator (default: 7)
  --out <DIR>    write the shrunk findings as fixture JSON files into DIR
                 (created if missing)
  --json <PATH>  write the fuzz telemetry (scenario / event / shrink
                 counters plus every finding) to PATH as JSON
";

/// Parsed command line.
struct Cli {
    quick: bool,
    shadow: bool,
    jobs: usize,
    /// Intra-run thread count applied to every `RunSpec` (`--threads`).
    threads: usize,
    json: Option<String>,
    baseline: Option<String>,
    /// Relative `mean_events` regression threshold, as a fraction (the
    /// flag takes percent).
    baseline_threshold: f64,
    /// Event budget for E1's large-n rows (`--event-cap`).
    event_cap: usize,
    figures: bool,
    /// Abort on the first failing run instead of supervising
    /// (`--fail-fast`).
    fail_fast: bool,
    /// Directory of the crash-safe sweep journal (`--checkpoint-dir`).
    checkpoint_dir: Option<String>,
    /// Per-attempt wall-clock budget in seconds (`--watchdog-secs`).
    watchdog_secs: Option<u64>,
    /// Table ids (`e1` … `e7`) explicitly requested, in canonical order.
    selected: Vec<&'static str>,
    /// Fuzz mode (`report fuzz`): run the shrinking scenario fuzzer
    /// instead of the tables.
    fuzz: bool,
    /// Total discovery event budget of the fuzzer (`--budget`).
    budget: u64,
    /// Seed of the fuzzer's random scenario generator (`--fuzz-seed`).
    fuzz_seed: u64,
    /// Directory the fuzzer writes regression fixtures into (`--out`).
    out: Option<String>,
}

/// Parses arguments; `Err` carries the message for stderr (usage error).
fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        quick: false,
        shadow: false,
        jobs: sweep::default_jobs(),
        threads: 1,
        json: None,
        baseline: None,
        baseline_threshold: BASELINE_EVENTS_THRESHOLD,
        event_cap: LARGE_N_EVENT_CAP,
        figures: false,
        fail_fast: false,
        checkpoint_dir: None,
        watchdog_secs: None,
        selected: Vec::new(),
        fuzz: false,
        budget: FuzzConfig::default().budget,
        fuzz_seed: FuzzConfig::default().seed,
        out: None,
    };
    let mut threshold_given = false;
    let mut jobs_given = false;
    let mut threads_given = false;
    let mut event_cap_given = false;
    let mut budget_given = false;
    let mut fuzz_seed_given = false;
    // A flag that takes a path must not swallow the next flag as its value
    // (`--baseline --quick` is a missing path, not a file named --quick).
    fn path_value<'a>(
        iter: &mut std::slice::Iter<'a, String>,
        flag: &str,
    ) -> Result<&'a String, String> {
        match iter.next() {
            Some(value) if !value.starts_with('-') => Ok(value),
            _ => Err(format!("{flag} requires a path")),
        }
    }
    fn select(selected: &mut Vec<&'static str>, id: &'static str) {
        if !selected.contains(&id) {
            selected.push(id);
        }
    }
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "fuzz" => cli.fuzz = true,
            "--quick" => cli.quick = true,
            "--shadow" => cli.shadow = true,
            "--figures" => cli.figures = true,
            "--e1" => select(&mut cli.selected, "e1"),
            "--e2" | "--e3" => select(&mut cli.selected, "e2e3"),
            "--e4" => select(&mut cli.selected, "e4"),
            "--e5" => select(&mut cli.selected, "e5"),
            "--e6" => select(&mut cli.selected, "e6"),
            "--e7" => select(&mut cli.selected, "e7"),
            "--scale" => select(&mut cli.selected, "scale"),
            "--jobs" => {
                jobs_given = true;
                let value = iter.next().ok_or("--jobs requires a value")?;
                cli.jobs = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs wants a positive integer, got '{value}'"))?;
            }
            "--threads" => {
                threads_given = true;
                let value = iter.next().ok_or("--threads requires a value")?;
                cli.threads = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--threads wants a positive integer, got '{value}'"))?;
            }
            "--event-cap" => {
                event_cap_given = true;
                let value = iter.next().ok_or("--event-cap requires a value")?;
                cli.event_cap =
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            format!("--event-cap wants a positive integer, got '{value}'")
                        })?;
            }
            "--fail-fast" => cli.fail_fast = true,
            "--checkpoint-dir" => {
                cli.checkpoint_dir = Some(path_value(&mut iter, "--checkpoint-dir")?.clone())
            }
            "--watchdog-secs" => {
                let value = iter.next().ok_or("--watchdog-secs requires a value")?;
                cli.watchdog_secs = Some(
                    value
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| {
                            format!("--watchdog-secs wants a positive integer, got '{value}'")
                        })?,
                );
            }
            "--json" => cli.json = Some(path_value(&mut iter, "--json")?.clone()),
            "--baseline" => cli.baseline = Some(path_value(&mut iter, "--baseline")?.clone()),
            "--out" => cli.out = Some(path_value(&mut iter, "--out")?.clone()),
            "--budget" => {
                budget_given = true;
                let value = iter.next().ok_or("--budget requires a value")?;
                cli.budget = value
                    .parse::<u64>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--budget wants a positive integer, got '{value}'"))?;
            }
            "--fuzz-seed" => {
                fuzz_seed_given = true;
                let value = iter.next().ok_or("--fuzz-seed requires a value")?;
                cli.fuzz_seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("--fuzz-seed wants an unsigned integer, got '{value}'"))?;
            }
            "--baseline-threshold" => {
                let value = iter
                    .next()
                    .ok_or("--baseline-threshold requires a percentage")?;
                let pct = value
                    .parse::<f64>()
                    .ok()
                    .filter(|p| p.is_finite() && *p >= 0.0)
                    .ok_or_else(|| {
                        format!("--baseline-threshold wants a percentage >= 0, got '{value}'")
                    })?;
                cli.baseline_threshold = pct / 100.0;
                threshold_given = true;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if threshold_given && cli.baseline.is_none() {
        return Err("--baseline-threshold requires --baseline".into());
    }
    // Fail-fast restores the unsupervised abort path, which neither
    // journals checkpoints nor polls the watchdog.
    if cli.fail_fast && cli.checkpoint_dir.is_some() {
        return Err("--fail-fast cannot be combined with --checkpoint-dir".into());
    }
    if cli.fail_fast && cli.watchdog_secs.is_some() {
        return Err("--fail-fast cannot be combined with --watchdog-secs".into());
    }
    if cli.fuzz {
        // Fuzz mode is a different program: table and sweep flags are
        // rejected outright rather than silently ignored.
        let conflicts = [
            (cli.quick, "--quick"),
            (cli.shadow, "--shadow"),
            (cli.figures, "--figures"),
            (!cli.selected.is_empty(), "table selection flags"),
            (cli.baseline.is_some(), "--baseline"),
            (jobs_given, "--jobs"),
            (threads_given, "--threads"),
            (event_cap_given, "--event-cap"),
            (cli.fail_fast, "--fail-fast"),
            (cli.checkpoint_dir.is_some(), "--checkpoint-dir"),
            (cli.watchdog_secs.is_some(), "--watchdog-secs"),
        ];
        if let Some((_, flag)) = conflicts.iter().find(|(given, _)| *given) {
            return Err(format!("{flag} cannot be combined with fuzz mode"));
        }
    } else {
        let fuzz_only = [
            (budget_given, "--budget"),
            (fuzz_seed_given, "--fuzz-seed"),
            (cli.out.is_some(), "--out"),
        ];
        if let Some((_, flag)) = fuzz_only.iter().find(|(given, _)| *given) {
            return Err(format!("{flag} requires fuzz mode ('report fuzz ...')"));
        }
    }
    // Canonical order regardless of flag order, so `--e4 --e1` prints E1
    // first — same as the all-tables run.
    let order = ["e1", "e2e3", "e4", "e5", "e6", "e7", "scale"];
    cli.selected
        .sort_by_key(|id| order.iter().position(|o| o == id));
    Ok(Some(cli))
}

fn build_table_spec(id: &str, quick: bool, seeds: &[u64], event_cap: usize) -> TableSpec {
    match id {
        "e1" => {
            // The large-n rows (48, 96) run with scaling_table's bounded
            // event budget: they track per-event throughput and the
            // visibility cache, not time-to-gather.
            let ns: &[usize] = if quick {
                &[3, 5, 8, 48, 96]
            } else {
                &[3, 5, 6, 8, 10, 12, 48, 96]
            };
            scaling_table_spec_with_cap(ns, seeds, event_cap)
        }
        "e2e3" => expansion_table_spec(6, seeds),
        "e4" => adversary_table_spec(6, seeds),
        "e5" => baseline_table_spec(6, seeds),
        "e6" => delta_table_spec(6, &[1e-4, 1e-3, 1e-2, 5e-2], seeds),
        "e7" => shape_table_spec(6, seeds),
        // The scale table ignores `quick`/`seeds`: one seed at n = 10³ and
        // 10⁴ is already the expensive part, and its rows measure per-event
        // throughput, not gathering statistics.
        "scale" => scale_table_spec(event_cap),
        other => unreachable!("unknown table id {other}"),
    }
}

/// Runs one fuzz campaign (`report fuzz`): sweep, shrink, and write the
/// fixtures / telemetry the flags asked for.
fn run_fuzz(cli: &Cli) -> ExitCode {
    let config = FuzzConfig {
        budget: cli.budget,
        seed: cli.fuzz_seed,
        ..FuzzConfig::default()
    };
    let report = fuzz::fuzz(&config);
    println!("== FUZZ: shrinking scenario sweep ==");
    println!("fuzz seed {}, event budget {}", config.seed, config.budget);
    println!(
        "scenarios {}, events spent {}, confirm replays {}, shrink replays {}, findings {}",
        report.scenarios,
        report.events_spent,
        report.confirm_replays,
        report.shrink_replays,
        report.findings.len()
    );
    for finding in &report.findings {
        let spec = &finding.spec;
        println!(
            "  [{}] shape={} adversary={} k={} n={} seed={} cap={} | events={} gathered={} shrink_steps={}",
            finding.origin,
            spec.shape.name(),
            spec.adversary.name(),
            spec.adversary.fault_k(),
            spec.n,
            spec.seed,
            spec.max_events,
            finding.census.events,
            finding.census.gathered,
            finding.shrink_steps,
        );
    }
    if let Some(dir) = &cli.out {
        match fuzz::write_fixtures(&report, std::path::Path::new(dir)) {
            Ok(paths) => eprintln!("report: wrote {} fixture(s) to {dir}", paths.len()),
            Err(err) => {
                eprintln!("report: cannot write fixtures to '{dir}': {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &cli.json {
        if let Err(err) = write_atomic(
            std::path::Path::new(path),
            fuzz_json(&config, &report).as_bytes(),
        ) {
            eprintln!("report: cannot write '{path}': {err}");
            return ExitCode::FAILURE;
        }
        eprintln!("report: wrote {path} (fuzz telemetry)");
    }
    ExitCode::SUCCESS
}

/// The fuzz telemetry document (`report fuzz --json`): campaign counters
/// plus every shrunk finding, schema-versioned alongside the table report.
fn fuzz_json(config: &FuzzConfig, report: &FuzzReport) -> String {
    use json::JsonValue;
    let findings: Vec<JsonValue> = report
        .findings
        .iter()
        .map(|finding| {
            let spec = &finding.spec;
            JsonValue::Obj(vec![
                ("origin".into(), JsonValue::Str(finding.origin.into())),
                ("shape".into(), JsonValue::Str(spec.shape.name().into())),
                (
                    "adversary".into(),
                    JsonValue::Str(spec.adversary.name().into()),
                ),
                (
                    "fault_k".into(),
                    JsonValue::Int(spec.adversary.fault_k() as i64),
                ),
                ("n".into(), JsonValue::Int(spec.n as i64)),
                ("seed".into(), JsonValue::Int(spec.seed as i64)),
                ("max_events".into(), JsonValue::Int(spec.max_events as i64)),
                (
                    "shrink_steps".into(),
                    JsonValue::Int(finding.shrink_steps as i64),
                ),
                (
                    "census".into(),
                    JsonValue::Obj(vec![
                        ("gathered".into(), JsonValue::Bool(finding.census.gathered)),
                        (
                            "terminated".into(),
                            JsonValue::Bool(finding.census.terminated),
                        ),
                        (
                            "events".into(),
                            JsonValue::Int(finding.census.events as i64),
                        ),
                        (
                            "distance_bits".into(),
                            JsonValue::Int(finding.census.distance_bits as i64),
                        ),
                    ]),
                ),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        (
            "schema_version".into(),
            JsonValue::Int(fatrobots_bench::REPORT_SCHEMA_VERSION),
        ),
        (
            "generator".into(),
            JsonValue::Str("fatrobots-bench report".into()),
        ),
        ("mode".into(), JsonValue::Str("fuzz".into())),
        ("fuzz_seed".into(), JsonValue::Int(config.seed as i64)),
        ("budget".into(), JsonValue::Int(config.budget as i64)),
        ("scenarios".into(), JsonValue::Int(report.scenarios as i64)),
        (
            "events_spent".into(),
            JsonValue::Int(report.events_spent as i64),
        ),
        (
            "confirm_replays".into(),
            JsonValue::Int(report.confirm_replays as i64),
        ),
        (
            "shrink_replays".into(),
            JsonValue::Int(report.shrink_replays as i64),
        ),
        ("findings".into(), JsonValue::Arr(findings)),
    ])
    .to_pretty()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("report: {message}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Fail on an unwritable --json path up front, not after minutes of
    // sweeping: create any missing parent directories and probe by
    // creating the output file before any runs start.
    if let Some(path) = &cli.json {
        let parent = std::path::Path::new(path)
            .parent()
            .filter(|p| !p.as_os_str().is_empty());
        let probe = match parent {
            Some(parent) => std::fs::create_dir_all(parent),
            None => Ok(()),
        }
        .and_then(|()| {
            std::fs::OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(false)
                .open(path)
                .map(|_| ())
        });
        if let Err(err) = probe {
            eprintln!("report: cannot write '{path}': {err}");
            return ExitCode::FAILURE;
        }
    }

    if cli.fuzz {
        return run_fuzz(&cli);
    }

    // Likewise read and validate the baseline before sweeping.
    let baseline = match &cli.baseline {
        None => None,
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(err) => {
                    eprintln!("report: cannot read baseline '{path}': {err}");
                    return ExitCode::FAILURE;
                }
            };
            match json::parse(&text) {
                Ok(doc) => {
                    // Reject unsupported schemas before any sweep runs, not
                    // after minutes of table building.
                    if !fatrobots_bench::report_supported(&doc) {
                        eprintln!(
                            "report: baseline '{path}' has a missing or unsupported schema_version"
                        );
                        return ExitCode::FAILURE;
                    }
                    Some(doc)
                }
                Err(err) => {
                    eprintln!("report: baseline '{path}' is not valid JSON: {err}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let seeds: &[u64] = if cli.quick {
        &QUICK_SEEDS
    } else {
        &STANDARD_SEEDS
    };

    // Unlike the tables, the figures note only prints when asked for
    // explicitly — it never joins the default all-tables run.
    if cli.figures {
        println!("The figure reproductions (F1–F5) are executable tests:");
        println!("  cargo test --test figures");
    }

    let ids: Vec<&'static str> = if cli.selected.is_empty() && !cli.figures {
        vec!["e1", "e2e3", "e4", "e5", "e6", "e7", "scale"]
    } else {
        cli.selected.clone()
    };

    // The crash-safe sweep journal (`--checkpoint-dir`): one session spans
    // every table, so run ordinals are globally unique per invocation.
    let mut checkpoint = match &cli.checkpoint_dir {
        None => None,
        Some(dir) => {
            let path = std::path::Path::new(dir).join("journal.frck");
            match CheckpointedSweep::open(&path) {
                Ok(session) => Some(session),
                Err(err) => {
                    eprintln!(
                        "report: cannot open checkpoint journal '{}': {err}",
                        path.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let policy = SupervisionPolicy {
        watchdog: cli.watchdog_secs.map(std::time::Duration::from_secs),
        // Progress checkpoints only matter when there is a journal to
        // land in; without one the runs stay observer-free.
        progress_every: if checkpoint.is_some() {
            PROGRESS_EVERY_DEFAULT
        } else {
            0
        },
        ..SupervisionPolicy::default()
    };
    let mut supervision = SupervisionReport {
        fail_fast: cli.fail_fast,
        ..SupervisionReport::default()
    };

    // One worker pool for the whole invocation: every table's groups share
    // it instead of spawning and joining a fresh pool per table.
    let mut pool = SweepPool::new(cli.jobs);
    let mut tables: Vec<ExperimentTable> = Vec::new();
    for id in &ids {
        let mut spec = build_table_spec(id, cli.quick, seeds, cli.event_cap);
        if cli.shadow {
            // The oracle rides along on every run; experiment::run keeps it
            // off for non-paper strategies, so baselines stay untouched.
            for group in &mut spec.groups {
                for run_spec in &mut group.specs {
                    run_spec.shadow = true;
                }
            }
        }
        if cli.threads > 1 {
            for group in &mut spec.groups {
                for run_spec in &mut group.specs {
                    run_spec.threads = cli.threads;
                }
            }
        }
        let table = if cli.fail_fast {
            spec.execute_on(&mut pool)
        } else {
            let run = spec.execute_supervised_on(&mut pool, &policy, checkpoint.as_mut());
            supervision.retries += run.retries;
            supervision
                .failures
                .extend(run.failures.into_iter().map(|f| (id.to_string(), f)));
            run.table
        };
        print_table(&table);
        tables.push(table);
    }
    supervision.checkpoint = checkpoint.as_ref().map(CheckpointedSweep::telemetry);

    if let Some(path) = &cli.json {
        let text = report_json(
            &tables,
            cli.quick,
            cli.jobs,
            cli.shadow,
            cli.threads,
            &supervision,
        );
        if let Err(err) = write_atomic(std::path::Path::new(path), text.as_bytes()) {
            eprintln!("report: cannot write '{path}': {err}");
            return ExitCode::FAILURE;
        }
        let runs: usize = tables.iter().map(|t| t.summaries().count()).sum();
        // Note goes to stderr so stdout stays byte-identical with and
        // without --json.
        eprintln!(
            "report: wrote {path} ({} tables, {runs} runs)",
            tables.len()
        );
    }

    if let Some(doc) = &baseline {
        match diff_against_baseline(&tables, doc, cli.baseline_threshold) {
            Ok(diff) => {
                println!("\n== baseline diff ==");
                print!("{}", diff.text);
                if diff.regressions > 0 {
                    eprintln!(
                        "report: {} row(s) regressed beyond the threshold",
                        diff.regressions
                    );
                    return ExitCode::FAILURE;
                }
            }
            Err(message) => {
                eprintln!("report: {message}");
                return ExitCode::FAILURE;
            }
        }
    }

    // Failure rows surface last: the partial tables, JSON document and
    // baseline diff above all still happened, but a report with failed
    // runs must not exit 0.
    if !supervision.failures.is_empty() {
        eprintln!(
            "report: {} run(s) failed after supervision ({} retr{}):",
            supervision.failures.len(),
            supervision.retries,
            if supervision.retries == 1 { "y" } else { "ies" }
        );
        for (table, failure) in &supervision.failures {
            eprintln!(
                "  {table}: n={} seed={} shape={} adversary={}: {} (attempts {}{})",
                failure.spec.n,
                failure.spec.seed,
                failure.spec.shape.name(),
                failure.spec.adversary.name(),
                failure.message,
                failure.attempts,
                if failure.quarantined {
                    ", quarantined"
                } else {
                    ""
                }
            );
        }
        return ExitCode::FAILURE;
    }

    ExitCode::SUCCESS
}
