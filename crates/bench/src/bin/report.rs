//! `report` — regenerate the experiment tables of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p fatrobots-bench --bin report            # all tables
//! cargo run --release -p fatrobots-bench --bin report -- --e1    # one table
//! cargo run --release -p fatrobots-bench --bin report -- --quick # smaller sweeps
//! ```

use fatrobots_bench::{print_table, QUICK_SEEDS, STANDARD_SEEDS};
use fatrobots_sim::experiment::{
    adversary_table, baseline_table, delta_table, expansion_table, scaling_table, shape_table,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seeds: &[u64] = if quick { &QUICK_SEEDS } else { &STANDARD_SEEDS };
    let want = |flag: &str| {
        args.is_empty() || args.iter().all(|a| a == "--quick") || args.iter().any(|a| a == flag)
    };

    // Unlike the tables, the figures note only prints when asked for
    // explicitly — it never joins the default all-tables run.
    if args.iter().any(|a| a == "--figures") {
        println!("The figure reproductions (F1–F5) are executable tests:");
        println!("  cargo test --test figures");
    }

    if want("--e1") {
        let ns: &[usize] = if quick {
            &[3, 5, 8]
        } else {
            &[3, 5, 6, 8, 10, 12]
        };
        print_table(
            "E1 — gathering cost vs number of robots (random starts, random-async adversary)",
            &scaling_table(ns, seeds),
        );
    }
    if want("--e2") || want("--e3") {
        print_table(
            "E2/E3 — hull expansion & convergence monotonicity by initial shape (n = 6)",
            &expansion_table(6, seeds),
        );
    }
    if want("--e4") {
        print_table(
            "E4 — behaviour under each adversary (n = 6, random starts)",
            &adversary_table(6, seeds),
        );
    }
    if want("--e5") {
        print_table(
            "E5 — the paper's algorithm vs the baselines (n = 6, random starts)",
            &baseline_table(6, seeds),
        );
    }
    if want("--e6") {
        print_table(
            "E6 — sensitivity to the liveness distance delta (n = 6)",
            &delta_table(6, &[1e-4, 1e-3, 1e-2, 5e-2], seeds),
        );
    }
    if want("--e7") {
        print_table(
            "E7 — sensitivity to the initial configuration shape (n = 6)",
            &shape_table(6, seeds),
        );
    }
}
