//! # fatrobots-bench
//!
//! Shared helpers for the Criterion benchmarks and the `report` binary that
//! regenerates the tables of `EXPERIMENTS.md`. The actual experiment logic
//! lives in [`fatrobots_sim::experiment`]; this crate only provides small
//! wrappers so every bench and the report print exactly the same rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fatrobots_sim::experiment::AggregateRow;

/// The seeds used by the standard experiment tables. Keeping them in one
/// place makes `cargo bench` and `report` reproduce the same numbers.
pub const STANDARD_SEEDS: [u64; 5] = [1, 2, 3, 4, 5];

/// A smaller seed set for the expensive sweeps.
pub const QUICK_SEEDS: [u64; 3] = [1, 2, 3];

/// Prints one experiment table with its title.
pub fn print_table(title: &str, rows: &[AggregateRow]) {
    println!("\n== {title} ==");
    println!("{}", AggregateRow::header());
    for row in rows {
        println!("{row}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatrobots_sim::experiment::{scaling_table, RunSpec};

    #[test]
    fn seeds_are_distinct() {
        let unique: std::collections::HashSet<_> = STANDARD_SEEDS.iter().collect();
        assert_eq!(unique.len(), STANDARD_SEEDS.len());
    }

    #[test]
    fn print_table_smoke() {
        let rows = scaling_table(&[3], &[1]);
        assert_eq!(rows.len(), 1);
        print_table("smoke", &rows);
        let _ = RunSpec::new(3, 1);
    }
}
