//! # fatrobots-bench
//!
//! Shared helpers for the Criterion benchmarks and the `report` binary that
//! regenerates the tables of `EXPERIMENTS.md`. The actual experiment logic
//! lives in [`fatrobots_sim::experiment`] (with the parallel dispatch in
//! [`fatrobots_sim::sweep`]); this crate provides the table printer, the
//! hand-rolled [`json`] layer, and the `bench_report.json` serializer so
//! every bench and the report emit exactly the same rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use fatrobots_sim::experiment::{AggregateRow, ExperimentTable, RunSummary};
use json::JsonValue;

/// The seeds used by the standard experiment tables. Keeping them in one
/// place makes `cargo bench` and `report` reproduce the same numbers.
pub const STANDARD_SEEDS: [u64; 5] = [1, 2, 3, 4, 5];

/// A smaller seed set for the expensive sweeps.
pub const QUICK_SEEDS: [u64; 3] = [1, 2, 3];

/// The `schema_version` stamped into `bench_report.json`. Bump on any
/// breaking change to the report layout.
///
/// * **v1** — initial layout (tables → groups → aggregate + runs).
/// * **v2** — per-run records additionally carry
///   `visibility_cache_hits` / `visibility_cache_misses` (the incremental
///   world's pair-cache telemetry). v2 is a pure field addition: every v1
///   key is still present with the same meaning, and readers written
///   against v1 keep working — see [`report_supported`].
pub const REPORT_SCHEMA_VERSION: i64 = 2;

/// The oldest `schema_version` current tooling still reads.
pub const REPORT_SCHEMA_MIN_SUPPORTED: i64 = 1;

/// `true` when a parsed `bench_report.json` document carries a schema
/// version this crate's readers understand (v1 documents simply lack the
/// cache-telemetry fields; lookups for them return `None`).
pub fn report_supported(doc: &JsonValue) -> bool {
    matches!(
        doc.get("schema_version"),
        Some(&JsonValue::Int(v)) if (REPORT_SCHEMA_MIN_SUPPORTED..=REPORT_SCHEMA_VERSION).contains(&v)
    )
}

/// Prints one experiment table with its title.
pub fn print_table(table: &ExperimentTable) {
    println!("\n== {} ==", table.title);
    println!("{}", AggregateRow::header());
    for row in table.rows() {
        println!("{row}");
    }
}

/// One run flattened into a JSON record: the full spec plus every metric.
fn summary_json(s: &RunSummary) -> JsonValue {
    JsonValue::Obj(vec![
        ("n".into(), JsonValue::Int(s.spec.n as i64)),
        ("seed".into(), JsonValue::Int(s.spec.seed as i64)),
        ("shape".into(), JsonValue::Str(s.spec.shape.name().into())),
        (
            "strategy".into(),
            JsonValue::Str(s.spec.strategy.name().into()),
        ),
        (
            "adversary".into(),
            JsonValue::Str(s.spec.adversary.name().into()),
        ),
        ("delta".into(), JsonValue::num(s.spec.delta)),
        (
            "max_events".into(),
            JsonValue::Int(s.spec.max_events as i64),
        ),
        ("gathered".into(), JsonValue::Bool(s.gathered)),
        ("terminated".into(), JsonValue::Bool(s.terminated)),
        ("events".into(), JsonValue::Int(s.events as i64)),
        (
            "cycles_per_robot".into(),
            JsonValue::num(s.cycles_per_robot),
        ),
        ("distance".into(), JsonValue::num(s.distance)),
        (
            "first_fully_visible".into(),
            JsonValue::opt_int(s.first_fully_visible),
        ),
        (
            "first_connected".into(),
            JsonValue::opt_int(s.first_connected),
        ),
        (
            "expansion_monotonicity".into(),
            JsonValue::opt_num(s.expansion_monotonicity),
        ),
        (
            "convergence_monotonicity".into(),
            JsonValue::opt_num(s.convergence_monotonicity),
        ),
        (
            "visibility_cache_hits".into(),
            JsonValue::Int(s.visibility_cache_hits as i64),
        ),
        (
            "visibility_cache_misses".into(),
            JsonValue::Int(s.visibility_cache_misses as i64),
        ),
    ])
}

/// One aggregate row as a JSON record.
fn aggregate_json(row: &AggregateRow) -> JsonValue {
    JsonValue::Obj(vec![
        ("label".into(), JsonValue::Str(row.label.clone())),
        ("runs".into(), JsonValue::Int(row.runs as i64)),
        ("gathered_rate".into(), JsonValue::num(row.gathered_rate)),
        ("mean_events".into(), JsonValue::num(row.mean_events)),
        (
            "mean_cycles_per_robot".into(),
            JsonValue::num(row.mean_cycles_per_robot),
        ),
        ("mean_distance".into(), JsonValue::num(row.mean_distance)),
        (
            "mean_first_fully_visible".into(),
            JsonValue::opt_num(row.mean_first_fully_visible),
        ),
        (
            "mean_expansion_monotonicity".into(),
            JsonValue::opt_num(row.mean_expansion_monotonicity),
        ),
        (
            "mean_convergence_monotonicity".into(),
            JsonValue::opt_num(row.mean_convergence_monotonicity),
        ),
    ])
}

/// Serializes executed tables into the `bench_report.json` document.
///
/// Layout (see the README for the full schema):
///
/// ```json
/// {
///   "schema_version": 2,
///   "generator": "fatrobots-bench report",
///   "quick": true,
///   "jobs": 2,
///   "tables": [
///     { "id": "e1", "title": "…",
///       "groups": [ { "label": "n=3", "aggregate": {…}, "runs": [ {…} ] } ] }
///   ]
/// }
/// ```
pub fn report_json(tables: &[ExperimentTable], quick: bool, jobs: usize) -> String {
    let tables_json = tables
        .iter()
        .map(|table| {
            let groups = table
                .groups
                .iter()
                .map(|group| {
                    JsonValue::Obj(vec![
                        ("label".into(), JsonValue::Str(group.label.clone())),
                        ("aggregate".into(), aggregate_json(&group.aggregate())),
                        (
                            "runs".into(),
                            JsonValue::Arr(group.summaries.iter().map(summary_json).collect()),
                        ),
                    ])
                })
                .collect();
            JsonValue::Obj(vec![
                ("id".into(), JsonValue::Str(table.id.into())),
                ("title".into(), JsonValue::Str(table.title.clone())),
                ("groups".into(), JsonValue::Arr(groups)),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        (
            "schema_version".into(),
            JsonValue::Int(REPORT_SCHEMA_VERSION),
        ),
        (
            "generator".into(),
            JsonValue::Str("fatrobots-bench report".into()),
        ),
        ("quick".into(), JsonValue::Bool(quick)),
        ("jobs".into(), JsonValue::Int(jobs as i64)),
        ("tables".into(), JsonValue::Arr(tables_json)),
    ])
    .to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatrobots_sim::experiment::{scaling_table, RunSpec};

    #[test]
    fn seeds_are_distinct() {
        let unique: std::collections::HashSet<_> = STANDARD_SEEDS.iter().collect();
        assert_eq!(unique.len(), STANDARD_SEEDS.len());
    }

    #[test]
    fn print_table_smoke() {
        let table = scaling_table(&[3], &[1], 1);
        assert_eq!(table.rows().len(), 1);
        print_table(&table);
        let _ = RunSpec::new(3, 1);
    }

    #[test]
    fn report_json_round_trips_and_counts_runs() {
        let table = scaling_table(&[3], &[1, 2], 2);
        let text = report_json(std::slice::from_ref(&table), true, 2);
        let doc = json::parse(&text).expect("report JSON parses");
        assert_eq!(
            doc.get("schema_version"),
            Some(&JsonValue::Int(REPORT_SCHEMA_VERSION))
        );
        assert!(report_supported(&doc));
        assert_eq!(doc.get("quick"), Some(&JsonValue::Bool(true)));
        let tables = doc.get("tables").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].get("id").and_then(JsonValue::as_str), Some("e1"));
        let groups = tables[0].get("groups").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(groups.len(), 1);
        let runs = groups[0].get("runs").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(runs.len(), 2, "one JSON record per run");
        assert_eq!(
            runs[0].get("strategy").and_then(JsonValue::as_str),
            Some("agm-gathering")
        );
        // v2: cache telemetry rides along on every run record.
        assert!(matches!(
            runs[0].get("visibility_cache_misses"),
            Some(&JsonValue::Int(m)) if m > 0
        ));
        assert!(runs[0].get("visibility_cache_hits").is_some());
        let aggregate = groups[0].get("aggregate").unwrap();
        assert_eq!(aggregate.get("runs"), Some(&JsonValue::Int(2)));
    }

    #[test]
    fn v1_documents_still_parse_and_are_supported() {
        // A trimmed v1-era report: no cache-telemetry fields anywhere.
        let v1 = r#"{
          "schema_version": 1,
          "generator": "fatrobots-bench report",
          "quick": true,
          "jobs": 2,
          "tables": [
            { "id": "e1", "title": "E1", "groups": [
              { "label": "n=3",
                "aggregate": { "label": "n=3", "runs": 1, "gathered_rate": 1.0 },
                "runs": [ { "n": 3, "seed": 1, "gathered": true, "events": 37 } ] }
            ] }
          ]
        }"#;
        let doc = json::parse(v1).expect("v1 report parses");
        assert!(report_supported(&doc));
        let run = doc.get("tables").and_then(JsonValue::as_arr).unwrap()[0]
            .get("groups")
            .and_then(JsonValue::as_arr)
            .unwrap()[0]
            .get("runs")
            .and_then(JsonValue::as_arr)
            .unwrap()[0]
            .clone();
        assert_eq!(run.get("events"), Some(&JsonValue::Int(37)));
        // The v2-only fields are simply absent in a v1 record.
        assert!(run.get("visibility_cache_hits").is_none());
        // Unknown future versions are flagged as unsupported.
        let future = json::parse(r#"{"schema_version": 99}"#).unwrap();
        assert!(!report_supported(&future));
    }
}
