//! # fatrobots-bench
//!
//! Shared helpers for the Criterion benchmarks and the `report` binary that
//! regenerates the tables of `EXPERIMENTS.md`. The actual experiment logic
//! lives in [`fatrobots_sim::experiment`] (with the parallel dispatch in
//! [`fatrobots_sim::sweep`]); this crate provides the table printer, the
//! hand-rolled [`json`] layer, and the `bench_report.json` serializer so
//! every bench and the report emit exactly the same rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use fatrobots_geometry::kernel::shadow::PredicateSite;
use fatrobots_sim::checkpoint::CheckpointTelemetry;
use fatrobots_sim::experiment::{AggregateRow, ExperimentTable, RunSummary};
use fatrobots_sim::sweep::SweepFailure;
use json::JsonValue;

/// The seeds used by the standard experiment tables. Keeping them in one
/// place makes `cargo bench` and `report` reproduce the same numbers.
pub const STANDARD_SEEDS: [u64; 5] = [1, 2, 3, 4, 5];

/// A smaller seed set for the expensive sweeps.
pub const QUICK_SEEDS: [u64; 3] = [1, 2, 3];

/// The `schema_version` stamped into `bench_report.json`. Bump on any
/// breaking change to the report layout.
///
/// * **v1** — initial layout (tables → groups → aggregate + runs).
/// * **v2** — per-run records additionally carry
///   `visibility_cache_hits` / `visibility_cache_misses` (the incremental
///   world's pair-cache telemetry). v2 is a pure field addition: every v1
///   key is still present with the same meaning, and readers written
///   against v1 keep working — see [`report_supported`].
/// * **v3** — per-run records additionally carry the output-sensitive
///   event-loop telemetry: `decision_cache_hits` / `decision_cache_misses`
///   (Compute events replayed from the per-robot decision memo vs. run
///   through the pipeline) and `hull_repairs` / `hull_rebuilds` (world hull
///   refreshes served by the single-mover in-place repair vs. full
///   rebuilds). Again a pure field addition; v1 and v2 readers keep
///   working, and [`diff_against_baseline`] happily diffs a v2 baseline
///   against v3 tables (it only reads aggregate fields present since v1).
/// * **v4** — shadow-oracle telemetry. Per-run records carry a `shadow` key:
///   `null` when the run did not request the exact-arithmetic shadow oracle
///   (`report --shadow`), otherwise an object with the oracle's tallies
///   (`computes`, `divergent`, `predicate_flips`, per-site counters and the
///   `first_divergence` record). Aggregate rows carry `shadow_divergent` /
///   `shadow_flips` totals (`null` without the oracle). Another pure field
///   addition; [`diff_against_baseline`] applies its shadow-divergence rule
///   only when *both* sides carry the counters, so v1–v3 baselines keep
///   diffing cleanly against v4 tables.
/// * **v5** — pair-store telemetry. Per-run records additionally carry
///   `world_pair_entries` / `world_pair_registrations`: the visibility
///   pair-store size at the end of the run (the full Θ(n²) triangle under
///   the dense world mode, only the computed pairs under the sparse one)
///   and its live corridor-registration count. A pure field addition;
///   v1–v4 baselines keep diffing cleanly against v5 tables.
/// * **v6** — parallel-executor telemetry. The document root carries a
///   `threads` key (the `--threads` value every run executed with, 1 =
///   serial loop), and per-run records carry `threads` plus the executor's
///   counters: `par_batches` / `par_batched_events` (commutation batches
///   committed and the events inside multi-event batches) and
///   `speculation_hits` / `speculation_aborts` (speculative Compute
///   decisions consumed vs. discarded at version validation). All zero for
///   serial runs. The parallel executor is pinned event-for-event identical
///   to serial, so every *other* field is independent of `threads` — which
///   is exactly what lets [`diff_against_baseline`] compare a `--threads 4`
///   report against a serial baseline. A pure field addition; v1–v5
///   baselines keep diffing cleanly against v6 tables.
/// * **v7** — fault-injection telemetry. Per-run records carry the fault
///   adversaries' counters: `fault_crashed_robots` (victims permanently
///   crash-stopped by the schedule), `fault_starved_directives`
///   (activations granted to non-victims while a persistent-sleep window
///   starved its victims) and `fault_truncated_directives` (directives a
///   slow coalition truncated to the δ minimum). All zero under fault-free
///   adversaries; the E4 table also gains the three fault-adversary rows.
///   v7 additionally introduces the *fuzz telemetry* document
///   (`report fuzz --json`): a sibling format with `"mode": "fuzz"`,
///   campaign counters and the shrunk findings — baseline diffing only
///   ever reads table documents. A pure field addition; v1–v6 baselines
///   keep diffing cleanly against v7 tables.
/// * **v8** — supervised-execution telemetry. The document root carries a
///   `supervision` object: the `fail_fast` switch, the total `retries`
///   spent re-running panicked workers, a `failures` array (one structured
///   row per run that kept failing after its bounded retries — the spec
///   fields plus the panic `message`, `attempts` count and `quarantined`
///   flag), and `checkpoint` — `null` without `--checkpoint-dir`,
///   otherwise the crash-safe journal's counters (`resumed_rows`,
///   `replayed_events`, `journal_records`, `recovered_records`,
///   `dropped_bytes`, `write_errors`). Sweeps are deterministic, so the
///   checkpoint counters are the *only* keys that may differ between an
///   uninterrupted sweep and a killed-and-resumed one; the CI
///   `kill-resume` gate diffs the two documents modulo exactly those
///   lines. A pure field addition; v1–v7 baselines keep diffing cleanly
///   against v8 tables.
pub const REPORT_SCHEMA_VERSION: i64 = 8;

/// The oldest `schema_version` current tooling still reads.
pub const REPORT_SCHEMA_MIN_SUPPORTED: i64 = 1;

/// `true` when a parsed `bench_report.json` document carries a schema
/// version this crate's readers understand (v1 documents simply lack the
/// cache-telemetry fields; lookups for them return `None`).
pub fn report_supported(doc: &JsonValue) -> bool {
    matches!(
        doc.get("schema_version"),
        Some(&JsonValue::Int(v)) if (REPORT_SCHEMA_MIN_SUPPORTED..=REPORT_SCHEMA_VERSION).contains(&v)
    )
}

/// Relative `mean_events` increase beyond which a baseline comparison
/// counts as a regression (10%). Gathered-rate drops of any size are always
/// regressions — a run that stopped gathering is broken, not slow.
pub const BASELINE_EVENTS_THRESHOLD: f64 = 0.10;

/// Outcome of diffing freshly executed tables against a previous
/// `bench_report.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineDiff {
    /// Human-readable per-row delta lines.
    pub text: String,
    /// Number of rows that regressed beyond the thresholds.
    pub regressions: usize,
}

/// Looks up a numeric field of a JSON object as `f64` (accepting both `Int`
/// and `Num` encodings).
fn json_f64(obj: &JsonValue, key: &str) -> Option<f64> {
    match obj.get(key) {
        Some(&JsonValue::Num(v)) => Some(v),
        Some(&JsonValue::Int(v)) => Some(v as f64),
        _ => None,
    }
}

/// The aggregate record of table `id` / group `label` in a parsed report.
fn baseline_aggregate<'a>(doc: &'a JsonValue, id: &str, label: &str) -> Option<&'a JsonValue> {
    let tables = doc.get("tables")?.as_arr()?;
    let table = tables
        .iter()
        .find(|t| t.get("id").and_then(JsonValue::as_str) == Some(id))?;
    let groups = table.get("groups")?.as_arr()?;
    groups
        .iter()
        .find(|g| g.get("label").and_then(JsonValue::as_str) == Some(label))?
        .get("aggregate")
}

/// Diffs freshly executed tables against a previously written
/// `bench_report.json` document.
///
/// Per row (table id + group label) the gathered rate and mean event count
/// are compared: any drop in the gathered rate is a regression, and a
/// relative increase of `mean_events` beyond `events_threshold` is a
/// regression. Rows absent from the baseline are reported as new and never
/// regress. Returns `Err` for documents whose schema this crate cannot
/// read.
pub fn diff_against_baseline(
    tables: &[ExperimentTable],
    baseline: &JsonValue,
    events_threshold: f64,
) -> Result<BaselineDiff, String> {
    if !report_supported(baseline) {
        return Err(format!(
            "baseline schema_version is missing or unsupported (this build reads {REPORT_SCHEMA_MIN_SUPPORTED}..={REPORT_SCHEMA_VERSION})"
        ));
    }
    let mut text = String::new();
    let mut regressions = 0usize;
    for table in tables {
        for group in &table.groups {
            let row = group.aggregate();
            let label = format!("{}/{}", table.id, group.label);
            let Some(base) = baseline_aggregate(baseline, table.id, &group.label) else {
                text.push_str(&format!("{label:<28} (new row, no baseline)\n"));
                continue;
            };
            let base_gathered = json_f64(base, "gathered_rate");
            let base_events = json_f64(base, "mean_events");
            let mut verdicts = Vec::new();
            if let Some(bg) = base_gathered {
                if row.gathered_rate < bg - 1e-9 {
                    verdicts.push("gathered-rate REGRESSION");
                    regressions += 1;
                }
            }
            if let Some(be) = base_events {
                if be > 0.0 && row.mean_events > be * (1.0 + events_threshold) {
                    verdicts.push("events REGRESSION");
                    regressions += 1;
                }
            }
            // Shadow-divergence gate, applied only when both sides ran the
            // oracle: the sweeps are deterministic, so any growth in the
            // divergence count means a predicate site newly disagrees with
            // exact arithmetic — a correctness smell, not noise.
            let base_divergent = json_f64(base, "shadow_divergent");
            if let (Some(bd), Some(d)) = (base_divergent, row.shadow_divergent) {
                if (d as f64) > bd {
                    verdicts.push("shadow-divergence REGRESSION");
                    regressions += 1;
                }
            }
            let events_delta = match base_events {
                Some(be) if be > 0.0 => {
                    format!("{:+.1}%", (row.mean_events - be) / be * 100.0)
                }
                _ => "n/a".into(),
            };
            let shadow_delta = match (base_divergent, row.shadow_divergent) {
                (Some(bd), Some(d)) => format!("  shadow-div {bd:.0} -> {d}"),
                (None, Some(d)) => format!("  shadow-div new -> {d}"),
                _ => String::new(),
            };
            text.push_str(&format!(
                "{label:<28} gathered {} -> {:.2}  events {} -> {:.1} ({events_delta}){shadow_delta}{}{}\n",
                base_gathered.map_or("n/a".into(), |v| format!("{v:.2}")),
                row.gathered_rate,
                base_events.map_or("n/a".into(), |v| format!("{v:.1}")),
                row.mean_events,
                if verdicts.is_empty() { "" } else { "  " },
                verdicts.join(", "),
            ));
        }
    }
    Ok(BaselineDiff { text, regressions })
}

/// Prints one experiment table with its title.
pub fn print_table(table: &ExperimentTable) {
    println!("\n== {} ==", table.title);
    println!("{}", AggregateRow::header());
    for row in table.rows() {
        println!("{row}");
    }
}

/// The shadow-oracle tallies of one run as a JSON record (schema v4).
fn shadow_json(stats: &fatrobots_sim::shadow::ShadowStats) -> JsonValue {
    let first = stats
        .first_divergence
        .as_ref()
        .map_or(JsonValue::Null, |d| {
            JsonValue::Obj(vec![
                ("event".into(), JsonValue::Int(d.event as i64)),
                ("robot".into(), JsonValue::Int(d.robot as i64)),
                (
                    "site".into(),
                    d.site
                        .map_or(JsonValue::Null, |s| JsonValue::Str(s.name().into())),
                ),
                ("eps".into(), JsonValue::Str(format!("{:?}", d.eps))),
                ("exact".into(), JsonValue::Str(format!("{:?}", d.exact))),
            ])
        });
    // Per-site counters, only for sites the replay actually hit, keyed by
    // the site's canonical name.
    let sites = PredicateSite::ALL
        .into_iter()
        .filter(|&site| stats.log.calls_at(site) > 0)
        .map(|site| {
            (
                site.name().to_string(),
                JsonValue::Obj(vec![
                    (
                        "calls".into(),
                        JsonValue::Int(stats.log.calls_at(site) as i64),
                    ),
                    (
                        "disagreements".into(),
                        JsonValue::Int(stats.log.disagreements_at(site) as i64),
                    ),
                ]),
            )
        })
        .collect();
    JsonValue::Obj(vec![
        ("computes".into(), JsonValue::Int(stats.computes as i64)),
        ("divergent".into(), JsonValue::Int(stats.divergent as i64)),
        (
            "predicate_flips".into(),
            JsonValue::Int(stats.predicate_flips() as i64),
        ),
        ("first_divergence".into(), first),
        ("sites".into(), JsonValue::Obj(sites)),
    ])
}

/// One run flattened into a JSON record: the full spec plus every metric.
fn summary_json(s: &RunSummary) -> JsonValue {
    JsonValue::Obj(vec![
        ("n".into(), JsonValue::Int(s.spec.n as i64)),
        ("seed".into(), JsonValue::Int(s.spec.seed as i64)),
        ("shape".into(), JsonValue::Str(s.spec.shape.name().into())),
        (
            "strategy".into(),
            JsonValue::Str(s.spec.strategy.name().into()),
        ),
        (
            "adversary".into(),
            JsonValue::Str(s.spec.adversary.name().into()),
        ),
        ("delta".into(), JsonValue::num(s.spec.delta)),
        (
            "max_events".into(),
            JsonValue::Int(s.spec.max_events as i64),
        ),
        ("gathered".into(), JsonValue::Bool(s.gathered)),
        ("terminated".into(), JsonValue::Bool(s.terminated)),
        ("events".into(), JsonValue::Int(s.events as i64)),
        (
            "cycles_per_robot".into(),
            JsonValue::num(s.cycles_per_robot),
        ),
        ("distance".into(), JsonValue::num(s.distance)),
        (
            "first_fully_visible".into(),
            JsonValue::opt_int(s.first_fully_visible),
        ),
        (
            "first_connected".into(),
            JsonValue::opt_int(s.first_connected),
        ),
        (
            "expansion_monotonicity".into(),
            JsonValue::opt_num(s.expansion_monotonicity),
        ),
        (
            "convergence_monotonicity".into(),
            JsonValue::opt_num(s.convergence_monotonicity),
        ),
        (
            "visibility_cache_hits".into(),
            JsonValue::Int(s.visibility_cache_hits as i64),
        ),
        (
            "visibility_cache_misses".into(),
            JsonValue::Int(s.visibility_cache_misses as i64),
        ),
        (
            "decision_cache_hits".into(),
            JsonValue::Int(s.decision_cache_hits as i64),
        ),
        (
            "decision_cache_misses".into(),
            JsonValue::Int(s.decision_cache_misses as i64),
        ),
        ("hull_repairs".into(), JsonValue::Int(s.hull_repairs as i64)),
        (
            "hull_rebuilds".into(),
            JsonValue::Int(s.hull_rebuilds as i64),
        ),
        (
            "world_pair_entries".into(),
            JsonValue::Int(s.world_pair_entries as i64),
        ),
        (
            "world_pair_registrations".into(),
            JsonValue::Int(s.world_pair_registrations as i64),
        ),
        ("threads".into(), JsonValue::Int(s.spec.threads as i64)),
        ("par_batches".into(), JsonValue::Int(s.par_batches as i64)),
        (
            "par_batched_events".into(),
            JsonValue::Int(s.par_batched_events as i64),
        ),
        (
            "speculation_hits".into(),
            JsonValue::Int(s.speculation_hits as i64),
        ),
        (
            "speculation_aborts".into(),
            JsonValue::Int(s.speculation_aborts as i64),
        ),
        (
            "fault_crashed_robots".into(),
            JsonValue::Int(s.fault_crashed_robots as i64),
        ),
        (
            "fault_starved_directives".into(),
            JsonValue::Int(s.fault_starved_directives as i64),
        ),
        (
            "fault_truncated_directives".into(),
            JsonValue::Int(s.fault_truncated_directives as i64),
        ),
        (
            "shadow".into(),
            s.shadow.as_ref().map_or(JsonValue::Null, shadow_json),
        ),
    ])
}

/// The supervised-execution telemetry of one report invocation (schema
/// v8): what the `supervision` object of `bench_report.json` serializes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SupervisionReport {
    /// `--fail-fast` was in effect (a failing run aborts the sweep instead
    /// of becoming a failure row).
    pub fail_fast: bool,
    /// Total retry attempts spent across every table.
    pub retries: u64,
    /// Structured failure rows, as (table id, failure) pairs in execution
    /// order.
    pub failures: Vec<(String, SweepFailure)>,
    /// The crash-safe journal's counters when `--checkpoint-dir` was
    /// active, `None` otherwise.
    pub checkpoint: Option<CheckpointTelemetry>,
}

/// One structured failure row as a JSON record (schema v8).
fn failure_json(table: &str, failure: &SweepFailure) -> JsonValue {
    JsonValue::Obj(vec![
        ("table".into(), JsonValue::Str(table.into())),
        ("n".into(), JsonValue::Int(failure.spec.n as i64)),
        ("seed".into(), JsonValue::Int(failure.spec.seed as i64)),
        (
            "shape".into(),
            JsonValue::Str(failure.spec.shape.name().into()),
        ),
        (
            "strategy".into(),
            JsonValue::Str(failure.spec.strategy.name().into()),
        ),
        (
            "adversary".into(),
            JsonValue::Str(failure.spec.adversary.name().into()),
        ),
        ("message".into(), JsonValue::Str(failure.message.clone())),
        ("attempts".into(), JsonValue::Int(failure.attempts as i64)),
        ("quarantined".into(), JsonValue::Bool(failure.quarantined)),
    ])
}

/// The `supervision` object of the report document (schema v8).
fn supervision_json(supervision: &SupervisionReport) -> JsonValue {
    let checkpoint = supervision
        .checkpoint
        .as_ref()
        .map_or(JsonValue::Null, |ck| {
            JsonValue::Obj(vec![
                (
                    "resumed_rows".into(),
                    JsonValue::Int(ck.resumed_rows as i64),
                ),
                (
                    "replayed_events".into(),
                    JsonValue::Int(ck.replayed_events as i64),
                ),
                (
                    "journal_records".into(),
                    JsonValue::Int(ck.journal_records as i64),
                ),
                (
                    "recovered_records".into(),
                    JsonValue::Int(ck.recovered_records as i64),
                ),
                (
                    "dropped_bytes".into(),
                    JsonValue::Int(ck.dropped_bytes as i64),
                ),
                (
                    "write_errors".into(),
                    JsonValue::Int(ck.write_errors as i64),
                ),
            ])
        });
    JsonValue::Obj(vec![
        ("fail_fast".into(), JsonValue::Bool(supervision.fail_fast)),
        ("retries".into(), JsonValue::Int(supervision.retries as i64)),
        (
            "failures".into(),
            JsonValue::Arr(
                supervision
                    .failures
                    .iter()
                    .map(|(table, failure)| failure_json(table, failure))
                    .collect(),
            ),
        ),
        ("checkpoint".into(), checkpoint),
    ])
}

/// One aggregate row as a JSON record.
fn aggregate_json(row: &AggregateRow) -> JsonValue {
    JsonValue::Obj(vec![
        ("label".into(), JsonValue::Str(row.label.clone())),
        ("runs".into(), JsonValue::Int(row.runs as i64)),
        ("gathered_rate".into(), JsonValue::num(row.gathered_rate)),
        ("mean_events".into(), JsonValue::num(row.mean_events)),
        (
            "mean_cycles_per_robot".into(),
            JsonValue::num(row.mean_cycles_per_robot),
        ),
        ("mean_distance".into(), JsonValue::num(row.mean_distance)),
        (
            "mean_first_fully_visible".into(),
            JsonValue::opt_num(row.mean_first_fully_visible),
        ),
        (
            "mean_expansion_monotonicity".into(),
            JsonValue::opt_num(row.mean_expansion_monotonicity),
        ),
        (
            "mean_convergence_monotonicity".into(),
            JsonValue::opt_num(row.mean_convergence_monotonicity),
        ),
        (
            "shadow_divergent".into(),
            JsonValue::opt_int(row.shadow_divergent.map(|v| v as usize)),
        ),
        (
            "shadow_flips".into(),
            JsonValue::opt_int(row.shadow_flips.map(|v| v as usize)),
        ),
    ])
}

/// Serializes executed tables into the `bench_report.json` document.
///
/// Layout (see the README for the full schema):
///
/// ```json
/// {
///   "schema_version": 8,
///   "generator": "fatrobots-bench report",
///   "quick": true,
///   "shadow": false,
///   "jobs": 2,
///   "threads": 1,
///   "supervision": { "fail_fast": false, "retries": 0,
///                    "failures": [], "checkpoint": null },
///   "tables": [
///     { "id": "e1", "title": "…",
///       "groups": [ { "label": "n=3", "aggregate": {…}, "runs": [ {…} ] } ] }
///   ]
/// }
/// ```
pub fn report_json(
    tables: &[ExperimentTable],
    quick: bool,
    jobs: usize,
    shadow: bool,
    threads: usize,
    supervision: &SupervisionReport,
) -> String {
    let tables_json = tables
        .iter()
        .map(|table| {
            let groups = table
                .groups
                .iter()
                .map(|group| {
                    JsonValue::Obj(vec![
                        ("label".into(), JsonValue::Str(group.label.clone())),
                        ("aggregate".into(), aggregate_json(&group.aggregate())),
                        (
                            "runs".into(),
                            JsonValue::Arr(group.summaries.iter().map(summary_json).collect()),
                        ),
                    ])
                })
                .collect();
            JsonValue::Obj(vec![
                ("id".into(), JsonValue::Str(table.id.into())),
                ("title".into(), JsonValue::Str(table.title.clone())),
                ("groups".into(), JsonValue::Arr(groups)),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        (
            "schema_version".into(),
            JsonValue::Int(REPORT_SCHEMA_VERSION),
        ),
        (
            "generator".into(),
            JsonValue::Str("fatrobots-bench report".into()),
        ),
        ("quick".into(), JsonValue::Bool(quick)),
        ("shadow".into(), JsonValue::Bool(shadow)),
        ("jobs".into(), JsonValue::Int(jobs as i64)),
        ("threads".into(), JsonValue::Int(threads as i64)),
        ("supervision".into(), supervision_json(supervision)),
        ("tables".into(), JsonValue::Arr(tables_json)),
    ])
    .to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fatrobots_sim::experiment::{scaling_table, RunSpec};

    #[test]
    fn seeds_are_distinct() {
        let unique: std::collections::HashSet<_> = STANDARD_SEEDS.iter().collect();
        assert_eq!(unique.len(), STANDARD_SEEDS.len());
    }

    #[test]
    fn print_table_smoke() {
        let table = scaling_table(&[3], &[1], 1);
        assert_eq!(table.rows().len(), 1);
        print_table(&table);
        let _ = RunSpec::new(3, 1);
    }

    #[test]
    fn report_json_round_trips_and_counts_runs() {
        let table = scaling_table(&[3], &[1, 2], 2);
        let text = report_json(
            std::slice::from_ref(&table),
            true,
            2,
            false,
            1,
            &SupervisionReport::default(),
        );
        let doc = json::parse(&text).expect("report JSON parses");
        assert_eq!(
            doc.get("schema_version"),
            Some(&JsonValue::Int(REPORT_SCHEMA_VERSION))
        );
        assert!(report_supported(&doc));
        assert_eq!(doc.get("quick"), Some(&JsonValue::Bool(true)));
        let tables = doc.get("tables").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].get("id").and_then(JsonValue::as_str), Some("e1"));
        let groups = tables[0].get("groups").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(groups.len(), 1);
        let runs = groups[0].get("runs").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(runs.len(), 2, "one JSON record per run");
        assert_eq!(
            runs[0].get("strategy").and_then(JsonValue::as_str),
            Some("agm-gathering")
        );
        // v2: cache telemetry rides along on every run record.
        assert!(matches!(
            runs[0].get("visibility_cache_misses"),
            Some(&JsonValue::Int(m)) if m > 0
        ));
        assert!(runs[0].get("visibility_cache_hits").is_some());
        // v3: the output-sensitive loop's counters ride along too.
        assert!(matches!(
            runs[0].get("decision_cache_misses"),
            Some(&JsonValue::Int(m)) if m > 0
        ));
        assert!(runs[0].get("decision_cache_hits").is_some());
        assert!(runs[0].get("hull_repairs").is_some());
        assert!(matches!(
            runs[0].get("hull_rebuilds"),
            Some(&JsonValue::Int(m)) if m > 0
        ));
        // v5: pair-store telemetry — the default dense world reports the
        // full n(n-1)/2 triangle (n=3 → 3 entries).
        assert_eq!(runs[0].get("world_pair_entries"), Some(&JsonValue::Int(3)));
        assert!(matches!(
            runs[0].get("world_pair_registrations"),
            Some(&JsonValue::Int(m)) if m > 0
        ));
        // v6: parallel-executor telemetry — serial runs carry the keys with
        // thread count 1 and all counters zero.
        assert_eq!(doc.get("threads"), Some(&JsonValue::Int(1)));
        assert_eq!(runs[0].get("threads"), Some(&JsonValue::Int(1)));
        assert_eq!(runs[0].get("par_batches"), Some(&JsonValue::Int(0)));
        assert_eq!(runs[0].get("par_batched_events"), Some(&JsonValue::Int(0)));
        assert_eq!(runs[0].get("speculation_hits"), Some(&JsonValue::Int(0)));
        assert_eq!(runs[0].get("speculation_aborts"), Some(&JsonValue::Int(0)));
        // v7: fault-injection telemetry — zero under fault-free adversaries.
        assert_eq!(
            runs[0].get("fault_crashed_robots"),
            Some(&JsonValue::Int(0))
        );
        assert_eq!(
            runs[0].get("fault_starved_directives"),
            Some(&JsonValue::Int(0))
        );
        assert_eq!(
            runs[0].get("fault_truncated_directives"),
            Some(&JsonValue::Int(0))
        );
        let aggregate = groups[0].get("aggregate").unwrap();
        assert_eq!(aggregate.get("runs"), Some(&JsonValue::Int(2)));
        // v4: without --shadow the shadow keys are present but null.
        assert_eq!(runs[0].get("shadow"), Some(&JsonValue::Null));
        assert_eq!(aggregate.get("shadow_divergent"), Some(&JsonValue::Null));
        assert_eq!(aggregate.get("shadow_flips"), Some(&JsonValue::Null));
        // v8: the supervision object — clean default execution means no
        // failures, no retries, and no checkpoint journal.
        let supervision = doc.get("supervision").expect("supervision present");
        assert_eq!(supervision.get("fail_fast"), Some(&JsonValue::Bool(false)));
        assert_eq!(supervision.get("retries"), Some(&JsonValue::Int(0)));
        assert_eq!(
            supervision
                .get("failures")
                .and_then(JsonValue::as_arr)
                .map(|failures| failures.len()),
            Some(0)
        );
        assert_eq!(supervision.get("checkpoint"), Some(&JsonValue::Null));
    }

    #[test]
    fn supervision_failures_and_checkpoint_counters_serialize() {
        let table = scaling_table(&[3], &[1], 1);
        let supervision = SupervisionReport {
            fail_fast: false,
            retries: 2,
            failures: vec![(
                "e1".into(),
                fatrobots_sim::sweep::SweepFailure {
                    spec: RunSpec::new(0, 1),
                    message: "initial configuration needs at least one robot".into(),
                    attempts: 2,
                    quarantined: true,
                },
            )],
            checkpoint: Some(CheckpointTelemetry {
                resumed_rows: 3,
                replayed_events: 8_192,
                journal_records: 4,
                recovered_records: 4,
                dropped_bytes: 0,
                write_errors: 0,
            }),
        };
        let text = report_json(
            std::slice::from_ref(&table),
            true,
            1,
            false,
            1,
            &supervision,
        );
        let doc = json::parse(&text).expect("report JSON parses");
        let sup = doc.get("supervision").expect("supervision present");
        assert_eq!(sup.get("retries"), Some(&JsonValue::Int(2)));
        let failures = sup.get("failures").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(
            failures[0].get("table").and_then(JsonValue::as_str),
            Some("e1")
        );
        assert_eq!(failures[0].get("n"), Some(&JsonValue::Int(0)));
        assert_eq!(failures[0].get("attempts"), Some(&JsonValue::Int(2)));
        assert_eq!(failures[0].get("quarantined"), Some(&JsonValue::Bool(true)));
        assert!(failures[0]
            .get("message")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("at least one robot"));
        let ck = sup.get("checkpoint").expect("checkpoint present");
        assert_eq!(ck.get("resumed_rows"), Some(&JsonValue::Int(3)));
        assert_eq!(ck.get("replayed_events"), Some(&JsonValue::Int(8192)));
        assert_eq!(ck.get("write_errors"), Some(&JsonValue::Int(0)));
    }

    #[test]
    fn shadow_runs_serialize_their_oracle_tallies() {
        use fatrobots_sim::experiment::{sweep_table, SpecGroup};
        let groups = vec![SpecGroup::per_seed("n=3", &[1u64], |seed| RunSpec {
            shadow: true,
            max_events: 5_000,
            ..RunSpec::new(3, seed)
        })];
        let table = sweep_table("e1", "shadow smoke", groups, 1);
        let text = report_json(
            std::slice::from_ref(&table),
            true,
            1,
            true,
            1,
            &SupervisionReport::default(),
        );
        let doc = json::parse(&text).expect("shadow report parses");
        assert_eq!(doc.get("shadow"), Some(&JsonValue::Bool(true)));
        let group = &doc.get("tables").and_then(JsonValue::as_arr).unwrap()[0]
            .get("groups")
            .and_then(JsonValue::as_arr)
            .unwrap()[0];
        let run = &group.get("runs").and_then(JsonValue::as_arr).unwrap()[0];
        let shadow = run.get("shadow").expect("shadow record present");
        assert!(matches!(
            shadow.get("computes"),
            Some(&JsonValue::Int(c)) if c > 0
        ));
        assert!(shadow.get("divergent").is_some());
        assert!(shadow.get("predicate_flips").is_some());
        assert!(shadow.get("first_divergence").is_some());
        // Per-site counters carry the canonical predicate names.
        let sites = shadow.get("sites").expect("per-site counters present");
        assert!(matches!(
            sites.get("orientation_tol").and_then(|s| s.get("calls")),
            Some(&JsonValue::Int(c)) if c > 0
        ));
        // The aggregate totals mirror the per-run tallies.
        let aggregate = group.get("aggregate").unwrap();
        assert!(matches!(
            aggregate.get("shadow_divergent"),
            Some(&JsonValue::Int(_))
        ));
        assert!(matches!(
            aggregate.get("shadow_flips"),
            Some(&JsonValue::Int(_))
        ));
        // A shadow report self-diffs cleanly: the divergence gate engages
        // (both sides carry the counters) and finds no growth.
        let diff = diff_against_baseline(
            std::slice::from_ref(&table),
            &doc,
            BASELINE_EVENTS_THRESHOLD,
        )
        .expect("self diff succeeds");
        assert_eq!(diff.regressions, 0);
        assert!(diff.text.contains("shadow-div"));
    }

    #[test]
    fn shadow_divergence_gate_only_fires_when_both_sides_have_counters() {
        use fatrobots_sim::experiment::{sweep_table, SpecGroup};
        let groups = vec![SpecGroup::per_seed("n=3", &[1u64], |seed| RunSpec {
            shadow: true,
            max_events: 5_000,
            ..RunSpec::new(3, seed)
        })];
        let table = sweep_table("e1", "shadow gate", groups, 1);
        let row = table.rows().remove(0);
        let divergent = row.shadow_divergent.expect("oracle ran");

        // Baseline with a lower divergence count: a regression.
        let stricter = json::parse(
            r#"{"schema_version": 4, "tables": [
                 {"id": "e1", "groups": [
                   {"label": "n=3", "aggregate":
                      {"gathered_rate": 0.0, "mean_events": 1e9,
                        "shadow_divergent": -1}}]}]}"#,
        )
        .unwrap();
        let diff = diff_against_baseline(
            std::slice::from_ref(&table),
            &stricter,
            BASELINE_EVENTS_THRESHOLD,
        )
        .unwrap();
        assert_eq!(
            diff.regressions, 1,
            "any divergence-count growth is a regression:\n{}",
            diff.text
        );
        assert!(diff.text.contains("shadow-divergence REGRESSION"));

        // A v3-era baseline without the counters never trips the gate,
        // whatever the fresh tables carry.
        let v3 = json::parse(&format!(
            r#"{{"schema_version": 3, "tables": [
                 {{"id": "e1", "groups": [
                   {{"label": "n=3", "aggregate":
                      {{"gathered_rate": {g}, "mean_events": {e}}}}}]}}]}}"#,
            g = row.gathered_rate,
            e = row.mean_events,
        ))
        .unwrap();
        let diff =
            diff_against_baseline(std::slice::from_ref(&table), &v3, BASELINE_EVENTS_THRESHOLD)
                .unwrap();
        assert_eq!(diff.regressions, 0, "one-sided counters must not gate");
        let _ = divergent;
    }

    #[test]
    fn v2_baselines_diff_cleanly_against_v3_tables() {
        // The CI gate's compatibility story: a baseline written by the v2
        // code (no decision-cache or hull fields anywhere) must still be
        // accepted and diffed against freshly computed v3 tables.
        let table = scaling_table(&[3], &[1], 1);
        let row = table.rows().remove(0);
        let v2 = json::parse(&format!(
            r#"{{"schema_version": 2, "tables": [
                 {{"id": "e1", "groups": [
                   {{"label": "{label}", "aggregate":
                      {{"gathered_rate": {g}, "mean_events": {e}}}}}]}}]}}"#,
            label = row.label,
            g = row.gathered_rate,
            e = row.mean_events,
        ))
        .unwrap();
        assert!(report_supported(&v2));
        let diff =
            diff_against_baseline(std::slice::from_ref(&table), &v2, BASELINE_EVENTS_THRESHOLD)
                .expect("v2 baselines stay readable");
        assert_eq!(diff.regressions, 0, "identical rows cannot regress");
        assert!(diff.text.contains("e1/n=3"));
    }

    #[test]
    fn baseline_self_diff_has_no_regressions() {
        let table = scaling_table(&[3], &[1, 2], 2);
        let doc = json::parse(&report_json(
            std::slice::from_ref(&table),
            true,
            2,
            false,
            1,
            &SupervisionReport::default(),
        ))
        .unwrap();
        let diff = diff_against_baseline(
            std::slice::from_ref(&table),
            &doc,
            BASELINE_EVENTS_THRESHOLD,
        )
        .expect("self diff succeeds");
        assert_eq!(diff.regressions, 0, "a report cannot regress vs itself");
        assert!(diff.text.contains("e1/n=3"));
        assert!(diff.text.contains("+0.0%"));
    }

    #[test]
    fn baseline_diff_flags_gathered_and_event_regressions() {
        let table = scaling_table(&[3], &[1], 1);
        let row = table.rows().remove(0);
        // A fabricated "better" baseline: everything gathered instantly.
        let better = json::parse(&format!(
            r#"{{"schema_version": 2, "tables": [
                 {{"id": "e1", "groups": [
                   {{"label": "{label}", "aggregate":
                      {{"gathered_rate": {g}, "mean_events": {e}}}}}]}}]}}"#,
            label = row.label,
            g = row.gathered_rate + 0.5,
            e = (row.mean_events / 10.0).max(1.0),
        ))
        .unwrap();
        let diff = diff_against_baseline(
            std::slice::from_ref(&table),
            &better,
            BASELINE_EVENTS_THRESHOLD,
        )
        .unwrap();
        assert_eq!(
            diff.regressions, 2,
            "both metrics must regress:\n{}",
            diff.text
        );
        assert!(diff.text.contains("REGRESSION"));

        // Rows the baseline does not know are reported but never regress.
        let empty = json::parse(r#"{"schema_version": 2, "tables": []}"#).unwrap();
        let diff = diff_against_baseline(
            std::slice::from_ref(&table),
            &empty,
            BASELINE_EVENTS_THRESHOLD,
        )
        .unwrap();
        assert_eq!(diff.regressions, 0);
        assert!(diff.text.contains("new row"));

        // Unsupported schemas are an error, not a silent pass.
        let future = json::parse(r#"{"schema_version": 99}"#).unwrap();
        assert!(diff_against_baseline(
            std::slice::from_ref(&table),
            &future,
            BASELINE_EVENTS_THRESHOLD
        )
        .is_err());
    }

    #[test]
    fn v1_documents_still_parse_and_are_supported() {
        // A trimmed v1-era report: no cache-telemetry fields anywhere.
        let v1 = r#"{
          "schema_version": 1,
          "generator": "fatrobots-bench report",
          "quick": true,
          "jobs": 2,
          "tables": [
            { "id": "e1", "title": "E1", "groups": [
              { "label": "n=3",
                "aggregate": { "label": "n=3", "runs": 1, "gathered_rate": 1.0 },
                "runs": [ { "n": 3, "seed": 1, "gathered": true, "events": 37 } ] }
            ] }
          ]
        }"#;
        let doc = json::parse(v1).expect("v1 report parses");
        assert!(report_supported(&doc));
        let run = doc.get("tables").and_then(JsonValue::as_arr).unwrap()[0]
            .get("groups")
            .and_then(JsonValue::as_arr)
            .unwrap()[0]
            .get("runs")
            .and_then(JsonValue::as_arr)
            .unwrap()[0]
            .clone();
        assert_eq!(run.get("events"), Some(&JsonValue::Int(37)));
        // The v2-only fields are simply absent in a v1 record.
        assert!(run.get("visibility_cache_hits").is_none());
        // Unknown future versions are flagged as unsupported.
        let future = json::parse(r#"{"schema_version": 99}"#).unwrap();
        assert!(!report_supported(&future));
    }
}
