//! Integration tests for the `report` binary: flag handling, parallel
//! determinism, and the `bench_report.json` artifact.

use std::process::{Command, Output};

use fatrobots_bench::json::{self, JsonValue};

fn report(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_report"))
        .args(args)
        .output()
        .expect("report binary runs")
}

#[test]
fn unknown_flag_exits_nonzero_with_a_usage_message() {
    let out = report(&["--definitely-not-a-flag"]);
    assert!(
        !out.status.success(),
        "an unknown flag must not exit 0 (the old CLI silently ignored it)"
    );
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown flag '--definitely-not-a-flag'"));
    assert!(stderr.contains("Usage: report"));
    assert!(out.stdout.is_empty(), "usage errors must not print tables");
}

#[test]
fn help_exits_zero_and_documents_the_flags() {
    let out = report(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for flag in [
        "Usage: report",
        "--quick",
        "--shadow",
        "--jobs",
        "--threads",
        "--json",
        "--e1",
        "--scale",
        "--baseline",
        "--baseline-threshold",
        "--event-cap",
        "report fuzz",
        "--budget",
        "--fuzz-seed",
        "--out",
        "--fail-fast",
        "--checkpoint-dir",
        "--watchdog-secs",
    ] {
        assert!(stdout.contains(flag), "--help must mention {flag}");
    }
    assert!(
        stdout.contains("default: 10"),
        "--help must state the default regression threshold"
    );
}

#[test]
fn baseline_threshold_rejects_missing_malformed_and_orphaned_values() {
    for args in [
        &["--baseline-threshold"][..],
        &["--baseline-threshold", "ten"],
        &["--baseline-threshold", "-5"],
        // Without --baseline the flag has nothing to act on: silently
        // accepting it would hide a typo'd invocation.
        &["--baseline-threshold", "5"],
    ] {
        let out = report(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
        assert!(String::from_utf8(out.stderr)
            .unwrap()
            .contains("--baseline-threshold"));
    }
}

#[test]
fn jobs_rejects_missing_and_malformed_values() {
    for args in [&["--jobs"][..], &["--jobs", "zero"], &["--jobs", "0"]] {
        let out = report(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
        assert!(String::from_utf8(out.stderr).unwrap().contains("--jobs"));
    }
}

#[test]
fn threads_rejects_missing_and_malformed_values() {
    for args in [
        &["--threads"][..],
        &["--threads", "many"],
        &["--threads", "0"],
    ] {
        let out = report(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
        assert!(String::from_utf8(out.stderr).unwrap().contains("--threads"));
    }
}

#[test]
fn event_cap_rejects_missing_and_malformed_values() {
    for args in [
        &["--event-cap"][..],
        &["--event-cap", "lots"],
        &["--event-cap", "0"],
        &["--event-cap", "-1"],
        &["--event-cap", "1.5"],
    ] {
        let out = report(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
        assert!(String::from_utf8(out.stderr)
            .unwrap()
            .contains("--event-cap"));
        assert!(out.stdout.is_empty(), "usage errors must not print tables");
    }
}

#[test]
fn fuzz_mode_rejects_table_and_sweep_flags() {
    for args in [
        &["fuzz", "--shadow"][..],
        &["fuzz", "--quick"],
        &["fuzz", "--figures"],
        &["fuzz", "--e1"],
        &["fuzz", "--jobs", "2"],
        &["fuzz", "--threads", "2"],
        &["fuzz", "--event-cap", "100"],
        &["fuzz", "--baseline", "whatever.json"],
        &["fuzz", "--fail-fast"],
        &["fuzz", "--checkpoint-dir", "/tmp/ck"],
        &["fuzz", "--watchdog-secs", "5"],
    ] {
        let out = report(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("cannot be combined with fuzz mode"),
            "{args:?}: {stderr}"
        );
        assert!(stderr.contains("Usage: report"));
        assert!(out.stdout.is_empty(), "usage errors must not fuzz or sweep");
    }
}

#[test]
fn fuzz_only_flags_require_fuzz_mode() {
    for args in [
        &["--budget", "1000"][..],
        &["--fuzz-seed", "7"],
        &["--out", "/tmp/fixtures"],
    ] {
        let out = report(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("requires fuzz mode") && stderr.contains(args[0]),
            "{args:?}: {stderr}"
        );
        assert!(out.stdout.is_empty(), "usage errors must not print tables");
    }
}

#[test]
fn fuzz_budget_and_seed_reject_missing_and_malformed_values() {
    for args in [
        &["fuzz", "--budget"][..],
        &["fuzz", "--budget", "lots"],
        &["fuzz", "--budget", "0"],
        &["fuzz", "--fuzz-seed"],
        &["fuzz", "--fuzz-seed", "lucky"],
    ] {
        let out = report(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
        assert!(String::from_utf8(out.stderr).unwrap().contains(args[1]));
    }
}

#[test]
fn path_flags_do_not_swallow_the_next_flag() {
    // `--baseline --quick` is a missing path, not a baseline file named
    // "--quick" (the old parser fell through to a confusing read error).
    for args in [
        &["--baseline", "--quick"][..],
        &["--json", "--quick"],
        &["fuzz", "--out", "--quick"],
        &["--checkpoint-dir", "--quick"],
    ] {
        let out = report(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("requires a path") && stderr.contains(args[args.len() - 2]),
            "{args:?}: {stderr}"
        );
        assert!(out.stdout.is_empty(), "usage errors must not print tables");
    }
}

#[test]
fn fuzz_smoke_rediscovers_the_committed_pilot_fixture() {
    // A budget of 1 stops the sweep after the first pilot scenario — the
    // canonical n = 16 / seed 2 stall — which must shrink to exactly the
    // committed fixture, byte for byte.
    let dir = std::env::temp_dir().join(format!("fuzz_smoke_cli_{}", std::process::id()));
    let json = std::env::temp_dir().join(format!("fuzz_smoke_cli_{}.json", std::process::id()));
    let out = report(&[
        "fuzz",
        "--budget",
        "1",
        "--fuzz-seed",
        "7",
        "--out",
        dir.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("FUZZ"), "stdout: {stdout}");
    assert!(stdout.contains("findings 1"), "stdout: {stdout}");

    let emitted: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(emitted.len(), 1, "exactly one fixture for one finding");
    let emitted_path = emitted[0].as_ref().unwrap().path();
    let committed = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/livelock")
        .join(emitted_path.file_name().unwrap());
    assert!(
        committed.exists(),
        "the pilot finding {} is not among the committed fixtures",
        emitted_path.display()
    );
    assert_eq!(
        std::fs::read_to_string(&emitted_path).unwrap(),
        std::fs::read_to_string(&committed).unwrap(),
        "the rediscovered fixture must be byte-identical to the committed one"
    );

    let telemetry = json::parse(&std::fs::read_to_string(&json).unwrap()).unwrap();
    assert_eq!(
        telemetry.get("schema_version"),
        Some(&JsonValue::Int(fatrobots_bench::REPORT_SCHEMA_VERSION))
    );
    assert_eq!(
        telemetry.get("mode").and_then(JsonValue::as_str),
        Some("fuzz")
    );
    let findings = telemetry
        .get("findings")
        .and_then(JsonValue::as_arr)
        .unwrap();
    assert_eq!(findings.len(), 1);
    assert_eq!(
        findings[0].get("census").and_then(|c| c.get("gathered")),
        Some(&JsonValue::Bool(false))
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&json);
}

// The tests below exercise E7 (shape table, n = 6) rather than E1: E1 now
// carries the large-n throughput rows (n = 48, 96), which are meant for the
// release-mode bench-report job and would dominate a debug-mode test run.

#[test]
fn parallel_table_output_is_byte_identical_to_serial() {
    let serial = report(&["--quick", "--e7", "--jobs", "1"]);
    let parallel = report(&["--quick", "--e7", "--jobs", "4"]);
    assert!(serial.status.success());
    assert!(parallel.status.success());
    assert!(!serial.stdout.is_empty());
    assert_eq!(
        serial.stdout, parallel.stdout,
        "sweep output must not depend on the worker count"
    );
}

#[test]
fn json_report_is_parseable_with_one_record_per_run() {
    let path =
        std::env::temp_dir().join(format!("bench_report_cli_test_{}.json", std::process::id()));
    let path_str = path.to_str().unwrap();
    let out = report(&["--quick", "--e7", "--jobs", "2", "--json", path_str]);
    assert!(out.status.success());

    let text = std::fs::read_to_string(&path).expect("bench_report.json written");
    let _ = std::fs::remove_file(&path);
    let doc = json::parse(&text).expect("bench_report.json parses");

    assert_eq!(
        doc.get("schema_version"),
        Some(&JsonValue::Int(fatrobots_bench::REPORT_SCHEMA_VERSION))
    );
    assert!(fatrobots_bench::report_supported(&doc));
    assert_eq!(doc.get("jobs"), Some(&JsonValue::Int(2)));
    assert_eq!(doc.get("quick"), Some(&JsonValue::Bool(true)));
    let tables = doc.get("tables").and_then(JsonValue::as_arr).unwrap();
    assert_eq!(tables.len(), 1);
    assert_eq!(tables[0].get("id").and_then(JsonValue::as_str), Some("e7"));

    // Schema v8: the supervision object — a clean run has no failures, no
    // retries, and (without --checkpoint-dir) no journal counters.
    let supervision = doc.get("supervision").expect("supervision present");
    assert_eq!(supervision.get("fail_fast"), Some(&JsonValue::Bool(false)));
    assert_eq!(supervision.get("retries"), Some(&JsonValue::Int(0)));
    assert_eq!(
        supervision
            .get("failures")
            .and_then(JsonValue::as_arr)
            .map(|f| f.len()),
        Some(0)
    );
    assert_eq!(supervision.get("checkpoint"), Some(&JsonValue::Null));

    // --quick --e7 sweeps the 9 shapes over 3 seeds: 9 groups, 3 runs
    // each, plus one aggregate row per group.
    let groups = tables[0].get("groups").and_then(JsonValue::as_arr).unwrap();
    assert_eq!(groups.len(), 9);
    for group in groups {
        let runs = group.get("runs").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(runs.len(), 3, "one JSON record per run");
        let aggregate = group.get("aggregate").expect("aggregate row present");
        assert_eq!(aggregate.get("runs"), Some(&JsonValue::Int(3)));
        for run in runs {
            for key in [
                "n",
                "seed",
                "shape",
                "strategy",
                "adversary",
                "events",
                "gathered",
                // Schema v2: the incremental world's cache telemetry.
                "visibility_cache_hits",
                "visibility_cache_misses",
                // Schema v3: the output-sensitive loop's counters.
                "decision_cache_hits",
                "decision_cache_misses",
                "hull_repairs",
                "hull_rebuilds",
                // Schema v4: the shadow-oracle record (null without
                // --shadow, but the key is always present).
                "shadow",
                // Schema v5: the pair-store telemetry.
                "world_pair_entries",
                "world_pair_registrations",
                // Schema v6: the parallel-executor telemetry.
                "threads",
                "par_batches",
                "par_batched_events",
                "speculation_hits",
                "speculation_aborts",
                // Schema v7: the fault-injection telemetry.
                "fault_crashed_robots",
                "fault_starved_directives",
                "fault_truncated_directives",
            ] {
                assert!(run.get(key).is_some(), "run record missing '{key}'");
            }
        }
    }
}

#[test]
fn threaded_table_output_is_byte_identical_to_serial() {
    // The parallel executor is pinned event-for-event against the serial
    // loop, so every table — and therefore the whole report — must be
    // byte-identical for every --threads value.
    let serial = report(&["--quick", "--e7", "--jobs", "1"]);
    let threaded = report(&["--quick", "--e7", "--jobs", "1", "--threads", "4"]);
    assert!(serial.status.success());
    assert!(threaded.status.success());
    assert!(!serial.stdout.is_empty());
    assert_eq!(
        serial.stdout, threaded.stdout,
        "table output must not depend on the intra-run thread count"
    );
}

#[test]
fn baseline_self_diff_passes_and_regressions_fail() {
    let dir = std::env::temp_dir();
    let current = dir.join(format!("bench_baseline_cli_{}.json", std::process::id()));
    let current_str = current.to_str().unwrap();

    // First run writes the report; second run diffs against it. The sweeps
    // are fully deterministic, so the self-diff must be regression-free.
    let out = report(&["--quick", "--e7", "--jobs", "2", "--json", current_str]);
    assert!(out.status.success());
    let out = report(&["--quick", "--e7", "--jobs", "2", "--baseline", current_str]);
    assert!(
        out.status.success(),
        "a deterministic report cannot regress against itself"
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("== baseline diff =="));
    assert!(stdout.contains("e7/"));
    assert!(!stdout.contains("REGRESSION"));

    // A fabricated "better" baseline makes the same sweep a regression:
    // exit code 1 and marked rows.
    let fabricated = dir.join(format!("bench_baseline_fab_{}.json", std::process::id()));
    std::fs::write(
        &fabricated,
        r#"{"schema_version": 2, "tables": [
             {"id": "e7", "groups": [
               {"label": "circle",
                "aggregate": {"gathered_rate": 2.0, "mean_events": 0.5}}]}]}"#,
    )
    .unwrap();
    let out = report(&[
        "--quick",
        "--e7",
        "--jobs",
        "2",
        "--baseline",
        fabricated.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("REGRESSION"), "stdout: {stdout}");
    assert!(String::from_utf8(out.stderr).unwrap().contains("regressed"));

    let _ = std::fs::remove_file(&current);
    let _ = std::fs::remove_file(&fabricated);
}

#[test]
fn baseline_threshold_widens_the_events_gate() {
    // A fabricated baseline whose mean_events is far below anything the
    // sweep can produce: an events regression under the default 10%
    // threshold, but not under an absurdly generous explicit one. The
    // gathered rate is 0.0 so only the events gate is in play.
    let dir = std::env::temp_dir();
    let fabricated = dir.join(format!("bench_threshold_cli_{}.json", std::process::id()));
    std::fs::write(
        &fabricated,
        r#"{"schema_version": 3, "tables": [
             {"id": "e7", "groups": [
               {"label": "circle",
                "aggregate": {"gathered_rate": 0.0, "mean_events": 0.5}}]}]}"#,
    )
    .unwrap();
    let fabricated_str = fabricated.to_str().unwrap();

    let out = report(&[
        "--quick",
        "--e7",
        "--jobs",
        "2",
        "--baseline",
        fabricated_str,
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "under the default 10% threshold this is an events regression"
    );
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("REGRESSION"));

    let out = report(&[
        "--quick",
        "--e7",
        "--jobs",
        "2",
        "--baseline",
        fabricated_str,
        "--baseline-threshold",
        "100000000000",
    ]);
    assert!(
        out.status.success(),
        "a generous explicit threshold must absorb the same delta: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!String::from_utf8(out.stdout)
        .unwrap()
        .contains("REGRESSION"));

    let _ = std::fs::remove_file(&fabricated);
}

#[test]
fn baseline_errors_are_reported_before_any_sweep() {
    // Missing file: fails fast with exit 1 (not a usage error, not a sweep).
    let out = report(&["--baseline", "/nonexistent-dir/none.json"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("cannot read baseline"));
    assert!(out.stdout.is_empty(), "no tables may run on a bad baseline");

    // Unparseable baseline: also exit 1, before sweeping.
    let bad = std::env::temp_dir().join(format!("bench_baseline_bad_{}.json", std::process::id()));
    std::fs::write(&bad, "not json at all").unwrap();
    let out = report(&["--baseline", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("not valid JSON"));
    let _ = std::fs::remove_file(&bad);

    // An unsupported schema_version is rejected before any sweep runs.
    let future =
        std::env::temp_dir().join(format!("bench_baseline_v99_{}.json", std::process::id()));
    std::fs::write(&future, r#"{"schema_version": 99}"#).unwrap();
    let out = report(&["--baseline", future.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unsupported schema_version"));
    assert!(out.stdout.is_empty(), "no tables may run on a bad baseline");
    let _ = std::fs::remove_file(&future);

    // --baseline without a value is a usage error.
    let out = report(&["--baseline"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn json_write_failure_is_reported() {
    // A path whose parent cannot exist (a component of it is a file):
    // creating the parent directories must fail before any sweep runs.
    let out = report(&[
        "--quick",
        "--e7",
        "--jobs",
        "2",
        "--json",
        "/dev/null/nested/bench_report.json",
    ]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("cannot write"));
    assert!(out.stdout.is_empty(), "the probe must fail before sweeping");
}

#[test]
fn json_creates_missing_parent_directories_and_writes_atomically() {
    let dir = std::env::temp_dir().join(format!("bench_json_nested_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("deeply/nested/bench_report.json");
    let out = report(&[
        "--quick",
        "--e7",
        "--jobs",
        "2",
        "--json",
        path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("missing parent dirs were created");
    assert!(json::parse(&text).is_ok());
    assert!(
        !path.with_extension("json.tmp").exists(),
        "the atomic write must not leave its temp file behind"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn supervision_flags_reject_conflicts_and_malformed_values() {
    for args in [
        // Fail-fast restores the unsupervised path: combining it with the
        // supervision-only machinery is a usage error, not a silent no-op.
        &["--fail-fast", "--checkpoint-dir", "/tmp/ck"][..],
        &["--fail-fast", "--watchdog-secs", "5"],
        &["--watchdog-secs"],
        &["--watchdog-secs", "soon"],
        &["--watchdog-secs", "0"],
        &["--checkpoint-dir"],
    ] {
        let out = report(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains(args[0]), "{args:?}: {stderr}");
        assert!(stderr.contains("Usage: report"));
        assert!(out.stdout.is_empty(), "usage errors must not print tables");
    }
}

#[test]
fn fail_fast_output_is_byte_identical_to_supervised_on_healthy_tables() {
    // On tables with no failing runs the supervised (default) and
    // fail-fast paths must produce exactly the same tables.
    let supervised = report(&["--quick", "--e7", "--jobs", "2"]);
    let fail_fast = report(&["--quick", "--e7", "--jobs", "2", "--fail-fast"]);
    assert!(supervised.status.success());
    assert!(fail_fast.status.success());
    assert!(!supervised.stdout.is_empty());
    assert_eq!(
        supervised.stdout, fail_fast.stdout,
        "healthy sweeps must not depend on the supervision mode"
    );
}

#[test]
fn checkpointed_report_resumes_identically_from_its_journal() {
    let dir = std::env::temp_dir().join(format!("bench_ck_cli_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ck = dir.join("ck");
    let first_json = dir.join("first.json");
    let second_json = dir.join("second.json");

    let first = report(&[
        "--quick",
        "--e7",
        "--jobs",
        "2",
        "--checkpoint-dir",
        ck.to_str().unwrap(),
        "--json",
        first_json.to_str().unwrap(),
    ]);
    assert!(
        first.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    assert!(ck.join("journal.frck").exists(), "the journal was written");

    // Re-running with the same flags resumes every row from the journal:
    // identical stdout, and an identical JSON document modulo the
    // schema-v8 checkpoint counters.
    let second = report(&[
        "--quick",
        "--e7",
        "--jobs",
        "2",
        "--checkpoint-dir",
        ck.to_str().unwrap(),
        "--json",
        second_json.to_str().unwrap(),
    ]);
    assert!(second.status.success());
    assert_eq!(
        first.stdout, second.stdout,
        "a resumed report must print the same tables"
    );

    let first_doc = json::parse(&std::fs::read_to_string(&first_json).unwrap()).unwrap();
    let second_doc = json::parse(&std::fs::read_to_string(&second_json).unwrap()).unwrap();
    let checkpoint = |doc: &JsonValue| {
        doc.get("supervision")
            .and_then(|s| s.get("checkpoint"))
            .cloned()
            .expect("checkpoint counters present")
    };
    assert_eq!(
        checkpoint(&first_doc).get("resumed_rows"),
        Some(&JsonValue::Int(0)),
        "the first run resumes nothing"
    );
    // --quick --e7 sweeps 9 shapes x 3 seeds = 27 runs, all resumed.
    assert_eq!(
        checkpoint(&second_doc).get("resumed_rows"),
        Some(&JsonValue::Int(27)),
        "the second run resumes every row"
    );
    // Outside the checkpoint counters the documents are identical: scrub
    // the counters and compare.
    let counter_keys = [
        "resumed_rows",
        "replayed_events",
        "journal_records",
        "recovered_records",
        "dropped_bytes",
        "write_errors",
    ];
    let scrub = |text: &str| {
        text.lines()
            .filter(|line| !counter_keys.iter().any(|key| line.contains(key)))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        scrub(&std::fs::read_to_string(&first_json).unwrap()),
        scrub(&std::fs::read_to_string(&second_json).unwrap()),
        "resume must be byte-identical modulo the checkpoint counters"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
