//! # fatrobots-baselines
//!
//! Baseline gathering strategies used as comparators for the paper's
//! algorithm in the experiment harness (EXPERIMENTS.md, experiment E5).
//!
//! None of these baselines is taken from a specific prior implementation;
//! they are the natural strawmen the paper's introduction argues against:
//!
//! * [`CentroidBaseline`] — the classical point-robot rule "move towards the
//!   centroid of what you see", which ignores both fatness and occlusion;
//! * [`GreedyNearest`] — "move until you touch your nearest visible robot",
//!   which connects locally but has no mechanism to establish full
//!   visibility or a single connected component;
//! * [`SmallN`] — a stand-in for the exhaustive case analysis of Czyzowicz,
//!   Gąsieniec & Pelc (2009), which solves gathering for n ≤ 4 fat robots
//!   and, by design, does not generalise: for n ≥ 5 it refuses to move.
//!
//! All baselines implement [`fatrobots_core::Strategy`], so the simulation
//! engine runs them exactly as it runs the paper's local algorithm. Their
//! termination rule is deliberately generous (terminate as soon as the view
//! is connected and contains all `n` robots); the experiments show they
//! still fail to gather for n ≥ 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fatrobots_core::{Decision, Strategy};
use fatrobots_geometry::{Point, EPS, UNIT_RADIUS};
use fatrobots_model::{GeometricConfig, LocalView};

/// Shared termination test used by every baseline: the robot stops as soon
/// as it sees all `n` robots and the discs in its view form one connected
/// component. (The paper's algorithm requires full visibility *and* convex
/// position; baselines get the weaker test so that any failure is theirs.)
fn view_gathered(view: &LocalView) -> bool {
    view.sees_all() && GeometricConfig::new(view.all_centers()).is_connected()
}

/// The point at distance 2 from `toward` on the segment `from → toward`: the
/// closest position at which the mover's disc is tangent to the target disc.
fn tangent_approach(from: Point, toward: Point) -> Point {
    let d = from.distance(toward);
    if d <= 2.0 * UNIT_RADIUS {
        return from;
    }
    toward + (from - toward).normalized() * (2.0 * UNIT_RADIUS)
}

/// Classical centroid pursuit: every robot heads for the centroid of its
/// view. Fat, non-transparent robots following this rule pile up around the
/// centroid, block each other's views and generally never reach a
/// configuration they can recognise as gathered.
#[derive(Debug, Clone, Copy, Default)]
pub struct CentroidBaseline;

impl CentroidBaseline {
    /// Creates the baseline.
    pub fn new() -> Self {
        CentroidBaseline
    }
}

impl Strategy for CentroidBaseline {
    fn decide(&self, view: &LocalView) -> Decision {
        if view_gathered(view) {
            return Decision::Terminate;
        }
        let centroid = Point::centroid(&view.all_centers());
        if centroid.distance(view.me()) < EPS {
            return Decision::MoveTo(view.me());
        }
        Decision::MoveTo(centroid)
    }

    fn memoizable(&self) -> bool {
        true // a pure deterministic function of the view
    }

    fn name(&self) -> &'static str {
        "centroid"
    }
}

/// Greedy local attachment: head for the nearest visible robot and stop when
/// tangent to it. Quickly forms small clumps, but nothing ever merges the
/// clumps or restores visibility across them.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyNearest;

impl GreedyNearest {
    /// Creates the baseline.
    pub fn new() -> Self {
        GreedyNearest
    }
}

impl Strategy for GreedyNearest {
    fn decide(&self, view: &LocalView) -> Decision {
        if view_gathered(view) {
            return Decision::Terminate;
        }
        let me = view.me();
        let nearest = view.others().iter().copied().min_by(|a, b| {
            a.distance(me)
                .partial_cmp(&b.distance(me))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        match nearest {
            Some(q) => Decision::MoveTo(tangent_approach(me, q)),
            None => Decision::MoveTo(me),
        }
    }

    fn memoizable(&self) -> bool {
        true // a pure deterministic function of the view
    }

    fn name(&self) -> &'static str {
        "greedy-nearest"
    }
}

/// A stand-in for the small-`n` exhaustive strategy of Czyzowicz et al.:
/// behaves like [`GreedyNearest`] for systems of at most four robots (where
/// occlusion cannot hide more than a constant number of robots and local
/// attachment does gather), and refuses to move for larger systems — the
/// approach simply has no case analysis beyond n = 4.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmallN;

impl SmallN {
    /// The largest system size this strategy is defined for.
    pub const MAX_N: usize = 4;

    /// Creates the baseline.
    pub fn new() -> Self {
        SmallN
    }
}

impl Strategy for SmallN {
    fn decide(&self, view: &LocalView) -> Decision {
        if view.n() > Self::MAX_N {
            // Out of the strategy's domain: the robot idles forever.
            return Decision::MoveTo(view.me());
        }
        GreedyNearest.decide(view)
    }

    fn memoizable(&self) -> bool {
        true // a pure deterministic function of the view
    }

    fn name(&self) -> &'static str {
        "small-n"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn centroid_heads_for_the_centroid() {
        let view = LocalView::new(p(0.0, 0.0), vec![p(12.0, 0.0), p(0.0, 12.0)], 3);
        let Decision::MoveTo(t) = CentroidBaseline::new().decide(&view) else {
            panic!("expected a move");
        };
        assert!(t.approx_eq(p(4.0, 4.0)));
    }

    #[test]
    fn centroid_terminates_when_view_is_gathered() {
        let view = LocalView::new(p(0.0, 0.0), vec![p(2.0, 0.0), p(4.0, 0.0)], 3);
        assert_eq!(CentroidBaseline::new().decide(&view), Decision::Terminate);
    }

    #[test]
    fn greedy_targets_tangency_with_the_nearest_robot() {
        let view = LocalView::new(p(0.0, 0.0), vec![p(10.0, 0.0), p(0.0, 6.0)], 3);
        let Decision::MoveTo(t) = GreedyNearest::new().decide(&view) else {
            panic!("expected a move");
        };
        // Nearest is (0,6); tangency point is (0,4).
        assert!(t.approx_eq(p(0.0, 4.0)));
    }

    #[test]
    fn greedy_with_no_visible_robot_stays() {
        let view = LocalView::new(p(3.0, 3.0), vec![], 5);
        assert_eq!(
            GreedyNearest::new().decide(&view),
            Decision::MoveTo(p(3.0, 3.0))
        );
    }

    #[test]
    fn tangent_approach_never_overshoots() {
        let t = tangent_approach(p(0.0, 0.0), p(1.5, 0.0));
        assert!(
            t.approx_eq(p(0.0, 0.0)),
            "already within contact range: stay"
        );
        let far = tangent_approach(p(0.0, 0.0), p(10.0, 0.0));
        assert!((far.distance(p(10.0, 0.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn small_n_acts_only_up_to_four_robots() {
        let small_view = LocalView::new(p(0.0, 0.0), vec![p(10.0, 0.0)], 2);
        assert_ne!(
            SmallN::new().decide(&small_view),
            Decision::MoveTo(p(0.0, 0.0)),
            "for n ≤ 4 the strategy moves"
        );
        let big_view = LocalView::new(p(0.0, 0.0), vec![p(10.0, 0.0), p(20.0, 5.0)], 5);
        assert_eq!(
            SmallN::new().decide(&big_view),
            Decision::MoveTo(p(0.0, 0.0)),
            "for n ≥ 5 the strategy idles"
        );
    }

    #[test]
    fn strategy_names_are_distinct() {
        let names = [
            CentroidBaseline::new().name(),
            GreedyNearest::new().name(),
            SmallN::new().name(),
        ];
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
    }
}
